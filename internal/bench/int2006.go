package bench

// SpecINT2006-like kernels. Slightly larger and more call-heavy than the
// 2000-era set, with a few kernels (456.hmmer, 462.libquantum) whose hot
// loops are data-parallel once calls and reductions are admitted — the
// reason the paper's INT2006 numbers exceed INT2000 under every
// configuration. As in int2000.go, every kernel carries a serial
// seedm[0]-mixing "input read" and a mixing checksum tail.

func init() {
	register(&Benchmark{
		Name:    "400.perlbench",
		Suite:   SuiteINT2006,
		Modeled: "regex/DFA scan: cursor and state hand-off early; per-state visit counters RMW; capture scoring independent",
		Source: `
var seedm [1]int;
var chkm [1]int;
const N = 2600;
const STATES = 32;
var text [N]int;
var delta [STATES * 8]int;
var visits [STATES]int;
var hits [N]int;
func main() int {
	var i int;
	seedm[0] = 52501;
	for (i = 0; i < N; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		text[i] = seedm[0] % 8;
	}
	for (i = 0; i < STATES * 8; i = i + 1) { delta[i] = (i * 29 + 7) % STATES; }
	var pos int = 0;
	var state int = 0;
	var nhits int = 0;
	while (pos < N - 2) {
		// DFA step: state and cursor hand-off at the top.
		var ch int = text[pos];
		state = delta[state * 8 + ch];
		pos = pos + 1 + (ch % 2);
		visits[state] = visits[state] + 1;
		// Independent: capture-group scoring at this position.
		var score int = 0;
		var k int;
		for (k = 0; k < 6; k = k + 1) { score = (score * 5 + text[(pos + k) % N]) % 127; }
		if (state == 3) {
			hits[nhits % N] = score;
			nhits = nhits + 1;
		}
	}
	chkm[0] = state + nhits;
	for (i = 0; i < N; i = i + 1) { chkm[0] = (chkm[0] * 31 + hits[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "401.bzip2",
		Suite:   SuiteINT2006,
		Modeled: "block-sort: per-position bucket histogram RMW (early) plus bounded suffix ranking (independent)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const N = 1800;
var data [N]int;
var bucket [256]int;
var ranksum [N]int;
func main() int {
	var i int;
	seedm[0] = 71993;
	for (i = 0; i < N; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		data[i] = seedm[0] % 256;
	}
	for (i = 0; i < N; i = i + 1) {
		// Histogram update first (frequent, early producer).
		bucket[data[i]] = bucket[data[i]] + 1;
		// Independent: bounded suffix comparison at this position.
		var r int = 0;
		var k int;
		for (k = 1; k < 7; k = k + 1) {
			if (data[(i + k) % N] > data[(i + k * 2) % N]) { r = r + k; }
		}
		ranksum[i] = r;
	}
	chkm[0] = 0;
	for (i = 0; i < 256; i = i + 1) { chkm[0] = (chkm[0] * 31 + bucket[i]) % 65521; }
	for (i = 0; i < N; i = i + 1) { chkm[0] = (chkm[0] * 31 + ranksum[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "403.gcc",
		Suite:   SuiteINT2006,
		Modeled: "constant-propagation sweep: lattice RMW early per insn; fold-cost helper per insn",
		Source: `
var seedm [1]int;
var chkm [1]int;
const INSNS = 2000;
const VALS = 32;
var op1 [INSNS]int;
var op2 [INSNS]int;
var lattice [VALS]int;
var folded [INSNS]int;
func fold_cost(v int) int {
	var cost int = 0;
	var k int;
	for (k = 0; k < 5; k = k + 1) { cost = cost + ((v + k) * 3) % 11; }
	return cost;
}
func main() int {
	var i int;
	seedm[0] = 2803;
	for (i = 0; i < INSNS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		op1[i] = seedm[0] % VALS;
		op2[i] = (seedm[0] >> 8) % VALS;
	}
	var pass int;
	for (pass = 0; pass < 2; pass = pass + 1) {
		for (i = 0; i < INSNS; i = i + 1) {
			// Lattice meet: RMW on the value table, early.
			var a int = lattice[op1[i]];
			var b int = lattice[op2[i]];
			var v int = (a + b + i) % 100;
			lattice[(op1[i] + op2[i]) % VALS] = v;
			folded[i] = fold_cost(v);
		}
	}
	chkm[0] = 0;
	for (i = 0; i < INSNS; i = i + 1) { chkm[0] = (chkm[0] * 31 + folded[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "429.mcf",
		Suite:   SuiteINT2006,
		Modeled: "shortest-path relaxation: arc scans, improvements rare and written late (prefers PDOALL over HELIX)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const NODES = 160;
const ARCS = 2400;
var au [ARCS]int;
var av [ARCS]int;
var aw [ARCS]int;
var dist [NODES]int;
func main() int {
	var i int;
	seedm[0] = 9973;
	for (i = 0; i < ARCS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		au[i] = seedm[0] % NODES;
		av[i] = (seedm[0] >> 8) % NODES;
		aw[i] = (seedm[0] >> 16) % 30 + 1;
	}
	for (i = 0; i < NODES; i = i + 1) { dist[i] = 10000 + (i * 13) % 50; }
	dist[0] = 0;
	var round int;
	var relaxed int = 0;
	for (round = 0; round < 3; round = round + 1) {
		var a int;
		for (a = 0; a < ARCS; a = a + 1) {
			var nd int = dist[au[a]] + aw[a];
			if (nd < dist[av[a]]) {
				dist[av[a]] = nd;
				relaxed = relaxed + 1;
			}
		}
	}
	chkm[0] = relaxed;
	for (i = 0; i < NODES; i = i + 1) { chkm[0] = (chkm[0] * 31 + dist[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "445.gobmk",
		Suite:   SuiteINT2006,
		Modeled: "playout statistics: pattern helper per candidate; playout counter RMW early; win tables keyed by point",
		Source: `
var seedm [1]int;
var chkm [1]int;
const POINTS = 361;
const MOVES = 700;
var boardv [POINTS]int;
var wins [POINTS]int;
var visits [POINTS]int;
func pattern_score(p int) int {
	var s int = 0;
	var k int;
	for (k = 0; k < 8; k = k + 1) {
		s = s + boardv[(p + k * 19) % POINTS] * ((k % 3) + 1);
	}
	return s % 64;
}
func main() int {
	var i int;
	seedm[0] = 36187;
	for (i = 0; i < POINTS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		boardv[i] = seedm[0] % 3;
	}
	var m int;
	for (m = 0; m < MOVES; m = m + 1) {
		var p int = (m * 149 + 31) % POINTS;
		// Total playout counter: every-iteration RMW, early.
		visits[0] = visits[0] + 1;
		var sc int = pattern_score(p);
		visits[1 + p % (POINTS - 1)] = visits[1 + p % (POINTS - 1)] + 1;
		if (sc > 30) { wins[p] = wins[p] + 1; }
	}
	chkm[0] = 0;
	for (i = 0; i < POINTS; i = i + 1) { chkm[0] = (chkm[0] * 31 + wins[i] * 2 + visits[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "456.hmmer",
		Suite:   SuiteINT2006,
		Modeled: "profile HMM Viterbi: row-major DP, cells within a row independent given the previous row (the suite's vectorizable winner)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const SEQ = 60;
const STATES = 48;
var emit [STATES * 4]int;
var prev [STATES]int;
var cur [STATES]int;
var seq [SEQ]int;
func main() int {
	var i int;
	seedm[0] = 15273;
	for (i = 0; i < STATES * 4; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		emit[i] = seedm[0] % 40;
	}
	for (i = 0; i < SEQ; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		seq[i] = seedm[0] % 4;
	}
	for (i = 0; i < STATES; i = i + 1) { prev[i] = (i * 3) % 17; }
	var t int;
	for (t = 0; t < SEQ; t = t + 1) {
		var s int;
		for (s = 0; s < STATES; s = s + 1) {
			var stay int = prev[s] + 2;
			var move int = prev[(s + STATES - 1) % STATES] + 5;
			cur[s] = min(stay, move) + emit[s * 4 + seq[t]];
		}
		for (s = 0; s < STATES; s = s + 1) { prev[s] = cur[s]; }
	}
	var best int = 1000000;
	for (i = 0; i < STATES; i = i + 1) { best = min(best, prev[i]); }
	chkm[0] = best;
	for (i = 0; i < STATES; i = i + 1) { chkm[0] = (chkm[0] * 31 + prev[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "458.sjeng",
		Suite:   SuiteINT2006,
		Modeled: "alpha-beta node loop: transposition-table RMW every node; drifting alpha bound produced late, consumed at the top (HELIX-hostile)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const NODES = 1000;
const TT = 256;
var ttkey [TT]int;
var ttval [TT]int;
var pv [NODES]int;
func main() int {
	var n int;
	seedm[0] = 60913;
	for (n = 0; n < TT; n = n + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		ttval[n] = seedm[0] % 100;
	}
	var alpha int = -30000;
	var stored int = 0;
	for (n = 0; n < NODES; n = n + 1) {
		var key int = (n * 73 + 11) % TT;
		// TT probe + store: every-node RMW.
		var hit int = ttval[key];
		ttval[key] = (hit + n) % 4096;
		if (hit > alpha) { alpha = hit; }
		// Static evaluation of this node.
		var ev int = 0;
		var k int;
		for (k = 0; k < 9; k = k + 1) { ev = ev + ((n * 3 + k * 7) % 23) - 11; }
		if (ev > alpha - 8) {
			// Alpha drifts most nodes, produced at the very end.
			alpha = (alpha * 3 + ev) / 4;
			ttkey[key] = n % 512;
			stored = stored + 1;
		}
		pv[n] = alpha;
	}
	chkm[0] = alpha + stored;
	for (n = 0; n < NODES; n = n + 1) { chkm[0] = (chkm[0] * 31 + pv[n]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "462.libquantum",
		Suite:   SuiteINT2006,
		Modeled: "quantum gate application: helper call per amplitude, amplitudes independent (the suite's enormous outlier once fn2 admits the calls)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const AMPS = 2048;
const GATES = 6;
var state [AMPS]int;
func toffoli_cell(v int, g int, flip int) int {
	if (flip == 1) { return (v * 3 + 7) % 251; }
	return (v + g) % 251;
}
func main() int {
	var i int;
	for (i = 0; i < AMPS; i = i + 1) { state[i] = (i * 37 + 11) % 251; }
	var g int;
	for (g = 0; g < GATES; g = g + 1) {
		var target int = g % 11;
		for (i = 0; i < AMPS; i = i + 1) {
			state[i] = toffoli_cell(state[i], g, (i >> target) & 1);
		}
	}
	chkm[0] = 0;
	for (i = 0; i < AMPS; i = i + 16) { chkm[0] = (chkm[0] * 31 + state[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "464.h264ref",
		Suite:   SuiteINT2006,
		Modeled: "motion estimation: SAD reductions per candidate; running best-SAD bound updated late and consumed by early termination",
		Source: `
var seedm [1]int;
var chkm [1]int;
const W = 48;
const H = 32;
const CANDS = 110;
var ref [W * H]int;
var curf [W * H]int;
var sads [CANDS]int;
func main() int {
	var i int;
	seedm[0] = 44497;
	for (i = 0; i < W * H; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		ref[i] = seedm[0] % 256;
		curf[i] = (seedm[0] >> 8) % 256;
	}
	var c int;
	var bestsad int = 1000000;
	var bestc int = 0;
	for (c = 0; c < CANDS; c = c + 1) {
		var ox int = (c * 7) % 16;
		var oy int = (c * 11) % 8;
		var sad int = 0;
		var y int;
		for (y = 0; y < 8; y = y + 1) {
			var x int;
			for (x = 0; x < 8; x = x + 1) {
				var a int = curf[y * W + x];
				var b int = ref[(y + oy) * W + x + ox];
				sad = sad + abs(a - b);
			}
		}
		sads[c] = sad;
		// Best update: rare after warm-up, produced at iteration end.
		if (sad < bestsad) {
			bestsad = sad;
			bestc = c;
		}
	}
	chkm[0] = bestsad * 7 + bestc;
	for (c = 0; c < CANDS; c = c + 1) { chkm[0] = (chkm[0] * 31 + sads[c]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "471.omnetpp",
		Suite:   SuiteINT2006,
		Modeled: "discrete event simulation: heap pop/push every event (frequent memory LCDs through the event queue)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const HEAP = 512;
const EVENTS = 1100;
var heapt [HEAP]int;
var heapn int = 0;
var handled [16]int;
func main() int {
	var i int;
	var e int;
	for (e = 0; e < 40; e = e + 1) {
		heapt[heapn] = (e * 97 + 13) % 1000;
		heapn = heapn + 1;
	}
	var now int = 0;
	for (e = 0; e < EVENTS; e = e + 1) {
		// Pop-min (linear scan heap): the sequential spine.
		var besti int = 0;
		for (i = 1; i < heapn; i = i + 1) {
			if (heapt[i] < heapt[besti]) { besti = i; }
		}
		now = heapt[besti];
		heapt[besti] = heapt[heapn - 1];
		heapn = heapn - 1;
		// Handle: module processing, schedules a follow-up event.
		var kind int = now % 16;
		handled[kind] = handled[kind] + 1;
		if (heapn < HEAP - 1) {
			heapt[heapn] = now + 3 + (now * 7) % 41;
			heapn = heapn + 1;
		}
	}
	chkm[0] = now;
	for (i = 0; i < 16; i = i + 1) { chkm[0] = (chkm[0] * 31 + handled[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "473.astar",
		Suite:   SuiteINT2006,
		Modeled: "grid relaxation wave: left/up wavefront dependency with early distance writes (HELIX territory)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const W = 48;
const H = 48;
var grid [W * H]int;
var dist [W * H]int;
func main() int {
	var i int;
	seedm[0] = 88801;
	for (i = 0; i < W * H; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		grid[i] = 1 + seedm[0] % 9;
		dist[i] = 100000;
	}
	dist[0] = 0;
	var sweep int;
	for (sweep = 0; sweep < 4; sweep = sweep + 1) {
		for (i = 1; i < W * H; i = i + 1) {
			var best int = dist[i];
			if (i % W != 0) { best = min(best, dist[i - 1] + grid[i]); }
			if (i >= W) { best = min(best, dist[i - W] + grid[i]); }
			dist[i] = best;
		}
	}
	chkm[0] = dist[W * H - 1];
	for (i = 0; i < W * H; i = i + 1) { chkm[0] = (chkm[0] * 31 + dist[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "483.xalancbmk",
		Suite:   SuiteINT2006,
		Modeled: "XML transformation: node cursor chase early; tag-count table RMW per node; template evaluation independent",
		Source: `
var seedm [1]int;
var chkm [1]int;
const NODESN = 1024;
var child [NODESN]int;
var sibling [NODESN]int;
var tag [NODESN]int;
var tagcount [12]int;
var outv [NODESN]int;
func main() int {
	var i int;
	seedm[0] = 3361;
	for (i = 0; i < NODESN; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		child[i] = seedm[0] % NODESN;
		sibling[i] = (seedm[0] >> 8) % NODESN;
		tag[i] = (seedm[0] >> 16) % 12;
	}
	var node int = 0;
	var visited int = 0;
	var v int;
	for (v = 0; v < 1400; v = v + 1) {
		// Traversal hand-off first.
		var t int = tag[node];
		if (t % 3 == 0) { node = child[node]; } else { node = sibling[node]; }
		node = (node + v) % NODESN;
		visited = visited + 1;
		tagcount[t] = tagcount[t] + 1;
		// Independent: template evaluation for the visited node.
		var acc int = 0;
		var k int;
		for (k = 0; k < 14; k = k + 1) { acc = (acc * 3 + t + k) % 211; }
		outv[v % NODESN] = acc;
	}
	chkm[0] = visited + node;
	for (i = 0; i < NODESN; i = i + 1) { chkm[0] = (chkm[0] * 31 + outv[i]) % 65521; }
	return chkm[0];
}`,
	})
}
