package bench

import (
	"reflect"
	"testing"

	"loopapalooza/internal/core"
)

// oracleConfigs are the configurations the differential oracle runs: one
// per execution model, at the most permissive flag settings (maximum
// tracker activity), plus the remaining dep variants that change conflict
// handling.
func oracleConfigs(short bool) []core.Config {
	cfgs := []core.Config{
		{Model: core.DOALL, Reduc: 1, Dep: 0, Fn: 2},
		{Model: core.PDOALL, Reduc: 1, Dep: 2, Fn: 2},
		{Model: core.HELIX, Reduc: 1, Dep: 2, Fn: 2},
	}
	if !short {
		cfgs = append(cfgs,
			core.Config{Model: core.PDOALL, Reduc: 0, Dep: 0, Fn: 1},
			core.Config{Model: core.HELIX, Reduc: 1, Dep: 1, Fn: 2},
		)
	}
	return cfgs
}

// TestShadowTrackerDifferentialOracle runs every benchmark of the suite
// under DOALL, PDOALL, and HELIX with both the shadow-memory tracker and
// the legacy map tracker, and requires bit-identical Reports. This is the
// correctness gate for the shadow memory: any divergence in conflict
// detection, phase accounting, or cost propagation shows up as a report
// diff.
func TestShadowTrackerDifferentialOracle(t *testing.T) {
	benchmarks := All()
	if len(benchmarks) == 0 {
		t.Fatal("no registered benchmarks")
	}
	short := testing.Short()
	for _, b := range benchmarks {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			info, err := b.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range oracleConfigs(short) {
				shadow, errS := core.Run(info, cfg, core.RunOptions{Tracker: core.TrackerShadow})
				legacy, errL := core.Run(info, cfg, core.RunOptions{Tracker: core.TrackerLegacyMap})
				if (errS == nil) != (errL == nil) {
					t.Fatalf("%s: tracker error divergence: shadow=%v legacy=%v", cfg, errS, errL)
				}
				if errS != nil {
					if errS.Error() != errL.Error() {
						t.Fatalf("%s: error text divergence: shadow=%v legacy=%v", cfg, errS, errL)
					}
					continue
				}
				if !reflect.DeepEqual(shadow, legacy) {
					t.Errorf("%s: reports diverge\nshadow: %v\nlegacy: %v", cfg, shadow, legacy)
				}
			}
		})
	}
}
