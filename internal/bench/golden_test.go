package bench

// The golden-report regression suite: every benchmark × {DOALL, PDOALL,
// HELIX} report is pinned against a checked-in fixture, so no future
// change can silently shift a paper figure. The fixtures capture exactly
// the numbers the figures are built from — costs, covered ticks, per-loop
// tick/iteration/conflict counts, serialization reasons, and the anomaly
// total.
//
// Regenerate after an intentional engine change with:
//
//	go test ./internal/bench -run TestGolden -update
//
// and review the fixture diff like any other code change.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"loopapalooza/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report fixtures")

// goldenConfigs are the three execution models under the strictest flags:
// the baseline every relaxation in Figures 2-5 is measured against.
func goldenConfigs() []core.Config {
	return []core.Config{
		{Model: core.DOALL},
		{Model: core.PDOALL},
		{Model: core.HELIX},
	}
}

// goldenLoop pins one loop's dynamic profile.
type goldenLoop struct {
	ID            string            `json:"id"`
	Depth         int               `json:"depth"`
	Parallel      bool              `json:"parallel"`
	Reason        core.SerialReason `json:"reason"`
	SerialTicks   int64             `json:"serialTicks"`
	Iters         int64             `json:"iters"`
	ConflictIters int64             `json:"conflictIters"`
}

// goldenCell pins one (benchmark, configuration) report.
type goldenCell struct {
	Config       core.Config  `json:"config"`
	SerialCost   int64        `json:"serialCost"`
	ParallelCost int64        `json:"parallelCost"`
	CoveredTicks int64        `json:"coveredTicks"`
	Speedup      string       `json:"speedup"`
	Anomalies    int64        `json:"anomalies"`
	Loops        []goldenLoop `json:"loops"`
}

// goldenFile is one benchmark's fixture.
type goldenFile struct {
	Benchmark string       `json:"benchmark"`
	Cells     []goldenCell `json:"cells"`
}

// goldenOf distills a report into its pinned figure inputs.
func goldenOf(r *core.Report) goldenCell {
	cell := goldenCell{
		Config:       r.Config,
		SerialCost:   r.SerialCost,
		ParallelCost: r.ParallelCost,
		CoveredTicks: r.CoveredTicks,
		Speedup:      fmt.Sprintf("%.4fx", r.Speedup()),
		Anomalies:    r.Anomalies.Total(),
	}
	for _, lr := range r.Loops {
		cell.Loops = append(cell.Loops, goldenLoop{
			ID:            lr.ID,
			Depth:         lr.Depth,
			Parallel:      lr.Parallel,
			Reason:        lr.Reason,
			SerialTicks:   lr.SerialTicks,
			Iters:         lr.Iters,
			ConflictIters: lr.ConflictIters,
		})
	}
	return cell
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite runs the full benchmark set; skipped under -short")
	}
	h := NewHarness()
	h.Sweep(context.Background(), All(), goldenConfigs())

	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			gf := goldenFile{Benchmark: b.Name}
			for _, cfg := range goldenConfigs() {
				r, err := h.Report(b, cfg)
				if err != nil {
					t.Fatalf("%s under %s: %v", b.Name, cfg, err)
				}
				gf.Cells = append(gf.Cells, goldenOf(r))
			}
			got, err := json.MarshalIndent(gf, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := goldenPath(b.Name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (run with -update to create): %v", path, err)
			}
			if string(got) != string(want) {
				t.Errorf("report drifted from %s.\nIf this change is intentional, regenerate with\n  go test ./internal/bench -run TestGolden -update\nand review the diff.\n%s",
					path, diffHint(string(want), string(got)))
			}
		})
	}
}

// diffHint points at the first diverging line of two fixture texts.
func diffHint(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("fixture has %d lines, report has %d", len(wl), len(gl))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestGoldenFixturesComplete fails when a registered benchmark has no
// fixture (or a fixture has no benchmark), so additions stay pinned.
func TestGoldenFixturesComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden fixtures missing (run go test ./internal/bench -run TestGolden -update): %v", err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		onDisk[e.Name()] = true
	}
	for _, b := range All() {
		name := b.Name + ".json"
		if !onDisk[name] {
			t.Errorf("benchmark %s has no golden fixture", b.Name)
		}
		delete(onDisk, name)
	}
	for name := range onDisk {
		t.Errorf("fixture %s matches no registered benchmark", name)
	}
}
