package bench

// Run-once sweep batching: cells of one sweep that share a benchmark share
// one execution through core.MultiRun (the §III-A/§III-B split — the event
// stream is configuration-independent). The harness claims the missing
// cells of a benchmark under its lock, runs them as one batch, and fills
// every claimed cell from the shared event stream; cells already cached or
// in flight are joined exactly as before.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"loopapalooza/internal/core"
)

// Stats counts the work a harness performed and the work fan-out batching
// avoided. Executions is interpreter runs actually performed; Cells is the
// number of cells those runs materialized; Saved is the executions a
// one-run-per-cell harness would have needed on top (Cells - Executions,
// ignoring retries). Traces counts event-trace files recorded.
type Stats struct {
	Executions int64
	Cells      int64
	Saved      int64
	Traces     int64
}

// Stats snapshots the execution-dedup counters.
func (h *Harness) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// sweepBench materializes every cell of one benchmark, sharing a single
// execution across the configurations that are not already cached or in
// flight. Benchmarks with a run hook (fault-injection seam), sweeps with
// fan-out disabled, and single-config sweeps take the per-cell path.
func (h *Harness) sweepBench(ctx context.Context, b *Benchmark, cfgs []core.Config, analysisErr error) []Cell {
	out := make([]Cell, len(cfgs))
	if analysisErr != nil || ctx.Err() != nil || b.runHook != nil ||
		h.opts.DisableFanout || len(cfgs) < 2 {
		for i, cfg := range cfgs {
			out[i] = h.sweepCell(ctx, b, cfg, analysisErr)
		}
		return out
	}

	// Claim the missing cells under the lock: the claimer executes them as
	// one batch, everyone else joins the existing cells (singleflight,
	// exactly as in the per-cell path).
	type claim struct {
		i int
		c *cell
	}
	var owned []claim
	h.mu.Lock()
	joined := make([]*cell, len(cfgs))
	for i, cfg := range cfgs {
		k := key(b, cfg)
		if c := h.cells[k]; c != nil {
			joined[i] = c
			continue
		}
		c := &cell{bench: b, cfg: cfg, done: make(chan struct{})}
		h.cells[k] = c
		owned = append(owned, claim{i: i, c: c})
	}
	h.mu.Unlock()

	if len(owned) > 0 {
		// Invalid configurations fail exactly as their per-config Run
		// would, without poisoning the batch.
		batch := owned[:0:0]
		for _, cl := range owned {
			if err := cl.c.cfg.Validate(); err != nil {
				cl.c.err, cl.c.attempts = err, 1
				h.finishCell(cl.c)
				continue
			}
			batch = append(batch, cl)
		}
		if len(batch) > 0 {
			bcfgs := make([]core.Config, len(batch))
			for i, cl := range batch {
				bcfgs[i] = cl.c.cfg
			}
			reps, err, attempts := h.runBatch(ctx, b, bcfgs)
			for i, cl := range batch {
				if err == nil {
					cl.c.report = reps[i]
				} else {
					cl.c.err = err
				}
				cl.c.attempts = attempts
				h.finishCell(cl.c)
			}
		}
	}

	for i, cfg := range cfgs {
		c := joined[i]
		if c == nil {
			for _, cl := range owned {
				if cl.i == i {
					c = cl.c
				}
			}
		}
		<-c.done
		out[i] = Cell{Bench: b.Name, Config: cfg,
			Report: c.report, Err: c.err, Outcome: core.Classify(c.err), Attempts: c.attempts}
	}
	return out
}

// finishCell publishes a completed cell, forgetting it when it was
// canceled so a later sweep can retry (same policy as the per-cell path).
func (h *Harness) finishCell(c *cell) {
	if errors.Is(c.err, core.ErrCanceled) {
		h.mu.Lock()
		delete(h.cells, key(c.bench, c.cfg))
		h.mu.Unlock()
	}
	close(c.done)
}

// runBatch executes one benchmark once for a batch of configurations,
// recording a trace when the harness asks for one, retrying once on a
// transient failure, and keeping the dedup counters.
func (h *Harness) runBatch(ctx context.Context, b *Benchmark, cfgs []core.Config) ([]*core.Report, error, int) {
	reps, err := h.batchOnce(ctx, b, cfgs)
	attempts := 1
	if err != nil && h.opts.RetryTransient && transient(err) {
		reps, err = h.batchOnce(ctx, b, cfgs)
		attempts = 2
	}
	h.mu.Lock()
	h.stats.Executions += int64(attempts)
	h.stats.Cells += int64(len(cfgs))
	h.stats.Saved += int64(len(cfgs) - 1)
	h.mu.Unlock()
	return reps, err, attempts
}

// batchOnce is one fan-out execution attempt.
func (h *Harness) batchOnce(ctx context.Context, b *Benchmark, cfgs []core.Config) ([]*core.Report, error) {
	info, err := b.Analyze()
	if err != nil {
		return nil, err
	}
	opts := h.opts.Run
	if ctx != nil {
		opts.Ctx = ctx
	}
	var trace *traceFile
	if h.opts.TraceDir != "" {
		trace = newTraceFile(h.opts.TraceDir, b, opts)
		opts.Trace = &trace.buf
	}
	reps, err := core.MultiRun(info, cfgs, opts)
	if err != nil {
		return nil, err
	}
	if trace != nil {
		if err := trace.write(); err != nil {
			return nil, fmt.Errorf("bench %s: %w", b.Name, err)
		}
		h.mu.Lock()
		h.stats.Traces++
		h.mu.Unlock()
	}
	return reps, nil
}

// traceFile accumulates one benchmark's event trace in memory (so a sink
// failure cannot corrupt the run) and writes it atomically afterwards.
type traceFile struct {
	path string
	buf  bytes.Buffer
}

func newTraceFile(dir string, b *Benchmark, opts core.RunOptions) *traceFile {
	return &traceFile{path: filepath.Join(dir, TraceFileName(b.Name, b.Source, opts))}
}

func (t *traceFile) write() error {
	tmp := t.path + ".tmp"
	if err := os.WriteFile(tmp, t.buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, t.path)
}

// TraceFileName is the canonical trace file name for one benchmark
// execution: the benchmark name plus a short hash of the source and the
// record-time budgets, so stale traces are never confused with current
// ones (the trace format itself only checks the loop count).
func TraceFileName(name, source string, opts core.RunOptions) string {
	sum := sha256.Sum256(fmt.Appendf(nil, "%s\x00%d\x00%d", source, opts.MaxSteps, opts.MaxHeapCells))
	return fmt.Sprintf("%s-%x.lptrace", strings.ReplaceAll(name, string(filepath.Separator), "_"), sum[:4])
}
