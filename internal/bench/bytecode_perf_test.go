package bench

import (
	"context"
	"sort"
	"testing"

	"loopapalooza/internal/bytecode"
	"loopapalooza/internal/core"
)

// BenchmarkSweepEngines is the macro engine comparison: a full sweep of
// the EEMBC suite across the model grid under each execution engine —
// the treewalk÷bytecode time ratio is BENCH_PR7.json's
// bytecode_vs_treewalk headline.
func BenchmarkSweepEngines(b *testing.B) {
	benches := BySuite(SuiteEEMBC)
	if len(benches) == 0 {
		b.Fatal("no EEMBC benchmarks registered")
	}
	for _, bm := range benches {
		if _, err := bm.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	for _, engine := range []core.EngineKind{core.EngineBytecode, core.EngineTreewalk} {
		b.Run(engine.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := NewHarnessWith(HarnessOptions{Run: core.RunOptions{Engine: engine}})
				sr := h.Sweep(context.Background(), benches, sweepConfigs())
				if sr.OK() != len(benches)*len(sweepConfigs()) {
					b.Fatalf("sweep failures: %s", sr.Summary())
				}
			}
		})
	}
}

// BenchmarkBytecodeLowering measures compiling the whole registered suite
// to bytecode and reports the suite-wide static opcode mix as custom
// metrics: total instructions, how many are fused superinstructions, and
// one "op/<mnemonic>" counter per opcode (BENCH_PR7.json's
// bytecode_lowering table — the superinstruction-coverage record).
func BenchmarkBytecodeLowering(b *testing.B) {
	benches := All()
	var progs []*bytecode.Program
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		progs = progs[:0]
		for _, bm := range benches {
			info, err := bm.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			// Compile, not For: each op must pay the full lowering, not a
			// memoized lookup.
			p, err := bytecode.Compile(info)
			if err != nil {
				b.Fatal(err)
			}
			progs = append(progs, p)
		}
	}
	b.StopTimer()

	var static, fused int64
	counts := map[string]int64{}
	for _, p := range progs {
		static += p.StaticInsts()
		fused += p.FusedInsts()
		for op, n := range p.OpCounts() {
			counts[op] += n
		}
	}
	b.ReportMetric(float64(static), "insts")
	b.ReportMetric(float64(fused), "fused-insts")
	if static > 0 {
		b.ReportMetric(100*float64(fused)/float64(static), "fused-pct")
	}
	ops := make([]string, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		b.ReportMetric(float64(counts[op]), "op/"+op)
	}
}
