package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"loopapalooza/internal/core"
)

// Harness is the fault-isolated sweep engine: it runs benchmark ×
// configuration cells concurrently, deduplicates in-flight runs with
// per-cell singleflight locking, recovers worker panics into per-cell
// errors, enforces the configured resource budgets, and caches every
// outcome so regenerating several figures shares work.
type Harness struct {
	opts HarnessOptions

	mu    sync.Mutex
	cells map[string]*cell
	stats Stats
}

// HarnessOptions configures the sweep engine.
type HarnessOptions struct {
	// Run carries the per-cell resource budgets (MaxSteps, Timeout,
	// MaxHeapCells) applied to every benchmark execution.
	Run core.RunOptions
	// RetryTransient retries a failed cell once when the failure looks
	// transient (a recovered panic), before recording it.
	RetryTransient bool
	// Workers bounds sweep concurrency (0 = GOMAXPROCS).
	Workers int
	// DisableFanout forces one execution per cell. The zero value shares
	// one execution across all of a benchmark's configurations in a sweep
	// (core.MultiRun); reports are bit-identical either way, so this is a
	// debugging and benchmarking knob, not a correctness one.
	DisableFanout bool
	// TraceDir, when set, records each fan-out execution's event stream as
	// a binary trace file (TraceFileName) in this directory.
	TraceDir string
}

// cell is one (benchmark, configuration) slot. The goroutine that creates
// the cell runs it; everyone else waits on done (singleflight).
type cell struct {
	bench    *Benchmark
	cfg      core.Config
	done     chan struct{}
	report   *core.Report
	err      error
	attempts int
}

// Cell is the recorded outcome of one (benchmark, configuration) cell.
type Cell struct {
	// Bench is the benchmark name.
	Bench string
	// Config is the configuration.
	Config core.Config
	// Report is the completed report (nil on failure).
	Report *core.Report
	// Err is the per-cell error (nil on success).
	Err error
	// Outcome classifies Err into the failure taxonomy.
	Outcome core.Outcome
	// Attempts counts executions of the cell (2 after a transient retry).
	Attempts int
}

// NewHarness returns an empty harness with default options.
func NewHarness() *Harness { return NewHarnessWith(HarnessOptions{}) }

// NewHarnessWith returns an empty harness with the given budgets and
// sweep policy.
func NewHarnessWith(o HarnessOptions) *Harness {
	return &Harness{opts: o, cells: map[string]*cell{}}
}

func key(b *Benchmark, cfg core.Config) string { return b.Name + "|" + cfg.String() }

// Report runs (or recalls) one benchmark under one configuration.
// Concurrent callers of the same cell share a single execution.
func (h *Harness) Report(b *Benchmark, cfg core.Config) (*core.Report, error) {
	c := h.cell(nil, b, cfg)
	return c.report, c.err
}

// cell returns the completed cell for (b, cfg), executing it if this is
// the first request. ctx, when non-nil, overrides the harness context for
// this execution (the sweep-wide context).
func (h *Harness) cell(ctx context.Context, b *Benchmark, cfg core.Config) *cell {
	k := key(b, cfg)
	h.mu.Lock()
	c := h.cells[k]
	if c != nil {
		h.mu.Unlock()
		<-c.done
		return c
	}
	c = &cell{bench: b, cfg: cfg, done: make(chan struct{})}
	h.cells[k] = c
	h.mu.Unlock()

	defer close(c.done)
	c.report, c.err, c.attempts = h.runCell(ctx, b, cfg)
	if errors.Is(c.err, core.ErrCanceled) {
		// Cancellation is a property of the sweep, not the cell: forget
		// it so a later sweep can retry.
		h.mu.Lock()
		delete(h.cells, k)
		h.mu.Unlock()
	}
	return c
}

// runCell executes one cell, retrying once when the failure is transient
// and the harness policy allows it.
func (h *Harness) runCell(ctx context.Context, b *Benchmark, cfg core.Config) (*core.Report, error, int) {
	r, err := h.runOnce(ctx, b, cfg)
	if err != nil && h.opts.RetryTransient && transient(err) {
		r, err = h.runOnce(ctx, b, cfg)
		return r, err, 2
	}
	return r, err, 1
}

// runOnce executes one attempt, converting a worker panic into a per-cell
// *core.PanicError instead of crashing the process.
func (h *Harness) runOnce(ctx context.Context, b *Benchmark, cfg core.Config) (r *core.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			r = nil
			err = fmt.Errorf("bench %s under %s: %w", b.Name, cfg,
				&core.PanicError{Val: p, Stack: string(debug.Stack())})
		}
	}()
	opts := h.opts.Run
	if ctx != nil {
		opts.Ctx = ctx
	}
	h.mu.Lock()
	h.stats.Executions++
	h.stats.Cells++
	h.mu.Unlock()
	return b.RunWith(cfg, opts)
}

// transient reports whether a failure is worth one retry: recovered
// panics may be environmental, while budget trips and guest faults are
// deterministic.
func transient(err error) bool { return errors.Is(err, core.ErrPanic) }

// SweepResult is the outcome of one sweep: every cell, successful or not,
// plus aggregate counts by taxonomy outcome.
type SweepResult struct {
	// Cells holds one entry per (benchmark, configuration) pair, in
	// benches × cfgs order.
	Cells []Cell
	// Counts tallies cells by outcome.
	Counts map[core.Outcome]int
}

// Sweep runs every (benchmark, configuration) pair concurrently under the
// harness budgets, honoring ctx for sweep-wide cancellation. No failure
// aborts the sweep and no worker panic escapes: every cell completes with
// a classified outcome, and completed work is never discarded.
func (h *Harness) Sweep(ctx context.Context, benches []*Benchmark, cfgs []core.Config) *SweepResult {
	if ctx == nil {
		ctx = context.Background()
	}
	// Analyze serially first: analysis mutates shared caches once per
	// benchmark and is cheap relative to the runs. A benchmark that fails
	// to analyze fails each of its cells, not the sweep.
	analysisErr := map[string]error{}
	for _, b := range benches {
		if ctx.Err() != nil {
			break
		}
		if _, err := b.Analyze(); err != nil {
			analysisErr[b.Name] = err
		}
	}

	// One job per benchmark: all of a benchmark's cells share one
	// execution through the fan-out layer (unless DisableFanout), so the
	// unit of scheduling is the unit of execution.
	type job struct {
		i int
		b *Benchmark
	}
	out := make([]Cell, len(benches)*len(cfgs))

	workers := h.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				copy(out[j.i*len(cfgs):], h.sweepBench(ctx, j.b, cfgs, analysisErr[j.b.Name]))
			}
		}()
	}
	for i, b := range benches {
		ch <- job{i: i, b: b}
	}
	close(ch)
	wg.Wait()

	sr := &SweepResult{Cells: out, Counts: map[core.Outcome]int{}}
	for _, c := range out {
		sr.Counts[c.Outcome]++
	}
	return sr
}

// sweepCell materializes one Cell of a sweep.
func (h *Harness) sweepCell(ctx context.Context, b *Benchmark, cfg core.Config, analysisErr error) Cell {
	c := Cell{Bench: b.Name, Config: cfg}
	switch {
	case analysisErr != nil:
		c.Err = analysisErr
	case ctx.Err() != nil:
		c.Err = fmt.Errorf("bench %s under %s: %w", b.Name, cfg, core.ErrCanceled)
	default:
		cc := h.cell(ctx, b, cfg)
		c.Report, c.Err, c.Attempts = cc.report, cc.err, cc.attempts
	}
	c.Outcome = core.Classify(c.Err)
	return c
}

// OK counts successful cells.
func (sr *SweepResult) OK() int { return sr.Counts[core.OutcomeOK] }

// Failed returns the failed cells, in sweep order.
func (sr *SweepResult) Failed() []Cell {
	var out []Cell
	for _, c := range sr.Cells {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// Err joins every per-cell error (nil when the whole sweep succeeded).
// Callers that want the per-cell detail should use Failed instead.
func (sr *SweepResult) Err() error {
	var errs []error
	for _, c := range sr.Cells {
		if c.Err != nil {
			errs = append(errs, c.Err)
		}
	}
	return errors.Join(errs...)
}

// Summary renders the aggregate outcome counts, e.g.
// "68/70 cells ok (1 step-limit, 1 panic)".
func (sr *SweepResult) Summary() string {
	var parts []string
	for o := core.OutcomeStepLimit; o <= core.OutcomeError; o++ {
		if n := sr.Counts[o]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, o))
		}
	}
	s := fmt.Sprintf("%d/%d cells ok", sr.OK(), len(sr.Cells))
	if len(parts) > 0 {
		s += " (" + strings.Join(parts, ", ") + ")"
	}
	return s
}

// CellStats is a snapshot of the harness's recorded cells — the gauge the
// serving layer exports so a live lpd shows how much sweep work its
// resident harness has already amortized.
type CellStats struct {
	// Total counts every cell ever started (including in-flight).
	Total int
	// Done counts completed cells.
	Done int
	// Failed counts completed cells that recorded an error.
	Failed int
}

// CellStats snapshots the harness cell cache.
func (h *Harness) CellStats() CellStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := CellStats{Total: len(h.cells)}
	for _, c := range h.cells {
		select {
		case <-c.done:
			st.Done++
			if c.err != nil {
				st.Failed++
			}
		default:
		}
	}
	return st
}

// Failures returns every failed cell the harness has recorded so far
// (across all sweeps and Report calls), sorted by benchmark then
// configuration. In-flight cells are skipped.
func (h *Harness) Failures() []Cell {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Cell
	for _, c := range h.cells {
		select {
		case <-c.done:
		default:
			continue
		}
		if c.err != nil {
			out = append(out, Cell{
				Bench: c.bench.Name, Config: c.cfg,
				Err: c.err, Outcome: core.Classify(c.err), Attempts: c.attempts,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Config.String() < out[j].Config.String()
	})
	return out
}

// FormatFailureSummary renders failed cells as the failure-summary footer
// of the CLIs ("" when there is nothing to report).
func FormatFailureSummary(cells []Cell) string {
	if len(cells) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "failure summary: %d cell(s) did not complete\n", len(cells))
	for _, c := range cells {
		fmt.Fprintf(&b, "  %-16s %-28s %-13s %v\n", c.Bench, c.Config.String(), c.Outcome, c.Err)
	}
	return b.String()
}
