package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"loopapalooza/internal/core"
)

// Harness runs benchmark × configuration sweeps and assembles the paper's
// figures. Reports are cached, so regenerating several figures shares work.
type Harness struct {
	mu      sync.Mutex
	reports map[string]*core.Report // key: bench + "|" + config
	errs    map[string]error
}

// NewHarness returns an empty harness.
func NewHarness() *Harness {
	return &Harness{reports: map[string]*core.Report{}, errs: map[string]error{}}
}

func key(b *Benchmark, cfg core.Config) string { return b.Name + "|" + cfg.String() }

// Report runs (or recalls) one benchmark under one configuration.
func (h *Harness) Report(b *Benchmark, cfg core.Config) (*core.Report, error) {
	h.mu.Lock()
	if r := h.reports[key(b, cfg)]; r != nil {
		h.mu.Unlock()
		return r, nil
	}
	if err := h.errs[key(b, cfg)]; err != nil {
		h.mu.Unlock()
		return nil, err
	}
	h.mu.Unlock()

	r, err := b.Run(cfg)
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.errs[key(b, cfg)] = err
		return nil, err
	}
	h.reports[key(b, cfg)] = r
	return r, nil
}

// Prefetch runs every (benchmark, config) pair concurrently, bounded by
// GOMAXPROCS workers, and returns the first error.
func (h *Harness) Prefetch(benches []*Benchmark, cfgs []core.Config) error {
	type job struct {
		b   *Benchmark
		cfg core.Config
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if _, err := h.Report(j.b, j.cfg); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	// Analyze serially first: analysis mutates shared state once per
	// benchmark and is cheap relative to the runs.
	for _, b := range benches {
		if _, err := b.Analyze(); err != nil {
			close(jobs)
			wg.Wait()
			return err
		}
	}
	for _, b := range benches {
		for _, cfg := range cfgs {
			jobs <- job{b, cfg}
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// GeoMean returns the geometric mean of xs (1 if empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// SuiteSpeedup returns the geometric-mean speedup of a suite under cfg.
func (h *Harness) SuiteSpeedup(s Suite, cfg core.Config) (float64, error) {
	var xs []float64
	for _, b := range BySuite(s) {
		r, err := h.Report(b, cfg)
		if err != nil {
			return 0, err
		}
		xs = append(xs, r.Speedup())
	}
	return GeoMean(xs), nil
}

// SuiteCoverage returns the geometric-mean dynamic coverage (in percent) of
// a suite under cfg.
func (h *Harness) SuiteCoverage(s Suite, cfg core.Config) (float64, error) {
	var xs []float64
	for _, b := range BySuite(s) {
		r, err := h.Report(b, cfg)
		if err != nil {
			return 0, err
		}
		c := 100 * r.Coverage()
		if c < 0.1 {
			c = 0.1 // keep the geomean meaningful for zero-coverage runs
		}
		xs = append(xs, c)
	}
	return GeoMean(xs), nil
}

// FigureRow is one bar group of Figures 2/3: a configuration and the
// geomean speedup per suite.
type FigureRow struct {
	Config   core.Config
	PerSuite map[Suite]float64
}

// SpeedupFigure computes a Figure 2/3 style table: every paper
// configuration × the given suites.
func (h *Harness) SpeedupFigure(suites []Suite) ([]FigureRow, error) {
	var benches []*Benchmark
	for _, s := range suites {
		benches = append(benches, BySuite(s)...)
	}
	if err := h.Prefetch(benches, core.PaperConfigs()); err != nil {
		return nil, err
	}
	var rows []FigureRow
	for _, cfg := range core.PaperConfigs() {
		row := FigureRow{Config: cfg, PerSuite: map[Suite]float64{}}
		for _, s := range suites {
			v, err := h.SuiteSpeedup(s, cfg)
			if err != nil {
				return nil, err
			}
			row.PerSuite[s] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure2 regenerates the non-numeric speedup figure.
func (h *Harness) Figure2() ([]FigureRow, error) { return h.SpeedupFigure(NonNumericSuites()) }

// Figure3 regenerates the numeric speedup figure.
func (h *Harness) Figure3() ([]FigureRow, error) { return h.SpeedupFigure(NumericSuites()) }

// Figure4Row is one benchmark of Figure 4.
type Figure4Row struct {
	Name          string
	Suite         Suite
	PDOALLSpeedup float64
	HELIXSpeedup  float64
}

// Figure4 regenerates the per-benchmark best-PDOALL vs best-HELIX
// comparison across the four SPEC suites.
func (h *Harness) Figure4() ([]Figure4Row, error) {
	suites := []Suite{SuiteINT2000, SuiteINT2006, SuiteFP2000, SuiteFP2006}
	var benches []*Benchmark
	for _, s := range suites {
		benches = append(benches, BySuite(s)...)
	}
	if err := h.Prefetch(benches, []core.Config{core.BestPDOALL(), core.BestHELIX()}); err != nil {
		return nil, err
	}
	var rows []Figure4Row
	for _, b := range benches {
		rp, err := h.Report(b, core.BestPDOALL())
		if err != nil {
			return nil, err
		}
		rh, err := h.Report(b, core.BestHELIX())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure4Row{
			Name: b.Name, Suite: b.Suite,
			PDOALLSpeedup: rp.Speedup(), HELIXSpeedup: rh.Speedup(),
		})
	}
	return rows, nil
}

// Figure5Configs are the coverage configurations of Figure 5.
func Figure5Configs() []core.Config {
	return []core.Config{
		{Model: core.PDOALL, Reduc: 0, Dep: 0, Fn: 2},
		{Model: core.HELIX, Reduc: 0, Dep: 0, Fn: 2},
		{Model: core.HELIX, Reduc: 0, Dep: 1, Fn: 2},
	}
}

// Figure5Row is one bar group of Figure 5: geomean coverage (percent) per
// suite for one configuration.
type Figure5Row struct {
	Config   core.Config
	PerSuite map[Suite]float64
}

// Figure5 regenerates the dynamic-coverage figure.
func (h *Harness) Figure5() ([]Figure5Row, error) {
	if err := h.Prefetch(All(), Figure5Configs()); err != nil {
		return nil, err
	}
	var rows []Figure5Row
	for _, cfg := range Figure5Configs() {
		row := Figure5Row{Config: cfg, PerSuite: map[Suite]float64{}}
		for _, s := range AllSuites() {
			v, err := h.SuiteCoverage(s, cfg)
			if err != nil {
				return nil, err
			}
			row.PerSuite[s] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSpeedupFigure renders Figure 2/3 rows as a text table.
func FormatSpeedupFigure(title string, suites []Suite, rows []FigureRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s", "configuration")
	for _, s := range suites {
		fmt.Fprintf(&b, " %10s", string(s))
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s", r.Config.String())
		for _, s := range suites {
			fmt.Fprintf(&b, " %9.2fx", r.PerSuite[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure4 renders Figure 4 rows as a text table sorted by suite.
func FormatFigure4(rows []Figure4Row) string {
	sorted := append([]Figure4Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Suite != sorted[j].Suite {
			return sorted[i].Suite < sorted[j].Suite
		}
		return sorted[i].Name < sorted[j].Name
	})
	var b strings.Builder
	b.WriteString("Figure 4: per-benchmark speedups, best PDOALL (reduc1-dep2-fn2) vs best HELIX (reduc1-dep1-fn2)\n")
	fmt.Fprintf(&b, "%-16s %-10s %12s %12s %8s\n", "benchmark", "suite", "PDOALL", "HELIX", "winner")
	for _, r := range sorted {
		winner := "HELIX"
		if r.PDOALLSpeedup > r.HELIXSpeedup {
			winner = "PDOALL"
		}
		fmt.Fprintf(&b, "%-16s %-10s %11.2fx %11.2fx %8s\n",
			r.Name, string(r.Suite), r.PDOALLSpeedup, r.HELIXSpeedup, winner)
	}
	return b.String()
}

// FormatFigure5 renders Figure 5 rows as a text table.
func FormatFigure5(rows []Figure5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: GEOMEAN dynamic coverage (% of instructions in parallel loops)\n")
	fmt.Fprintf(&b, "%-28s", "configuration")
	for _, s := range AllSuites() {
		fmt.Fprintf(&b, " %10s", string(s))
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s", r.Config.String())
		for _, s := range AllSuites() {
			fmt.Fprintf(&b, " %9.1f%%", r.PerSuite[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}
