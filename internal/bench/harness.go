package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"loopapalooza/internal/core"
)

// This file assembles the paper's figures on top of the sweep engine
// (sweep.go). Figures degrade gracefully: a failed cell never aborts a
// figure — suite geomeans are computed over the surviving benchmarks and
// missing cells are annotated with their failure class (e.g. "n/a(steps)").

// Prefetch runs every (benchmark, config) pair concurrently and caches the
// per-cell outcome. It returns the joined per-cell errors (nil when every
// cell succeeded); unlike the old first-error semantics, a failure neither
// aborts the sweep nor discards completed work, and each cell's own error
// stays visible to later Report calls.
func (h *Harness) Prefetch(benches []*Benchmark, cfgs []core.Config) error {
	return h.Sweep(context.Background(), benches, cfgs).Err()
}

// GeoMean returns the geometric mean of xs (1 if empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// suiteStat is one suite × configuration aggregate over surviving cells.
type suiteStat struct {
	Geo        float64      // geomean of the metric over surviving benchmarks
	OK, Failed int          // cell counts
	Outcome    core.Outcome // dominant failure outcome (when Failed > 0)
	Err        error        // first per-cell error (when Failed > 0)
}

// Note renders the figure-cell annotation: "" for a complete cell,
// "n/a(<class>)" when every benchmark failed, "k/n" for a partial geomean
// over k of n benchmarks.
func (st suiteStat) Note() string {
	switch {
	case st.Failed == 0:
		return ""
	case st.OK == 0:
		return "n/a(" + st.Outcome.Short() + ")"
	default:
		return fmt.Sprintf("%d/%d", st.OK, st.OK+st.Failed)
	}
}

// suiteStatOf aggregates metric over a suite under cfg, skipping failed
// cells.
func (h *Harness) suiteStatOf(s Suite, cfg core.Config, metric func(*core.Report) float64) suiteStat {
	var st suiteStat
	var xs []float64
	counts := map[core.Outcome]int{}
	for _, b := range BySuite(s) {
		r, err := h.Report(b, cfg)
		if err != nil {
			st.Failed++
			counts[core.Classify(err)]++
			if st.Err == nil {
				st.Err = err
			}
			continue
		}
		st.OK++
		xs = append(xs, metric(r))
	}
	for o, n := range counts {
		if n > counts[st.Outcome] || st.Outcome == core.OutcomeOK {
			st.Outcome = o
		}
	}
	st.Geo = GeoMean(xs)
	if st.OK == 0 {
		st.Geo = 0
	}
	return st
}

func speedupMetric(r *core.Report) float64 { return r.Speedup() }

func coverageMetric(r *core.Report) float64 {
	c := 100 * r.Coverage()
	if c < 0.1 {
		c = 0.1 // keep the geomean meaningful for zero-coverage runs
	}
	return c
}

// SuiteSpeedup returns the geometric-mean speedup of a suite under cfg,
// computed over the surviving benchmarks. It fails only when no benchmark
// of the suite completed.
func (h *Harness) SuiteSpeedup(s Suite, cfg core.Config) (float64, error) {
	st := h.suiteStatOf(s, cfg, speedupMetric)
	if st.OK == 0 && st.Failed > 0 {
		return 0, fmt.Errorf("suite %s under %s: no surviving benchmark: %w", s, cfg, st.Err)
	}
	return st.Geo, nil
}

// SuiteCoverage returns the geometric-mean dynamic coverage (in percent)
// of a suite under cfg, computed over the surviving benchmarks.
func (h *Harness) SuiteCoverage(s Suite, cfg core.Config) (float64, error) {
	st := h.suiteStatOf(s, cfg, coverageMetric)
	if st.OK == 0 && st.Failed > 0 {
		return 0, fmt.Errorf("suite %s under %s: no surviving benchmark: %w", s, cfg, st.Err)
	}
	return st.Geo, nil
}

// FigureRow is one bar group of Figures 2/3: a configuration and the
// geomean speedup per suite. Notes carries the per-suite annotation for
// incomplete cells ("" or absent when complete).
type FigureRow struct {
	Config   core.Config
	PerSuite map[Suite]float64
	Notes    map[Suite]string
}

// SpeedupFigure computes a Figure 2/3 style table: every paper
// configuration × the given suites. Failed cells degrade the affected
// suite geomeans instead of aborting the figure.
func (h *Harness) SpeedupFigure(suites []Suite) ([]FigureRow, error) {
	var benches []*Benchmark
	for _, s := range suites {
		benches = append(benches, BySuite(s)...)
	}
	h.Sweep(context.Background(), benches, core.PaperConfigs())
	var rows []FigureRow
	for _, cfg := range core.PaperConfigs() {
		row := FigureRow{Config: cfg, PerSuite: map[Suite]float64{}, Notes: map[Suite]string{}}
		for _, s := range suites {
			st := h.suiteStatOf(s, cfg, speedupMetric)
			row.PerSuite[s] = st.Geo
			if n := st.Note(); n != "" {
				row.Notes[s] = n
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure2 regenerates the non-numeric speedup figure.
func (h *Harness) Figure2() ([]FigureRow, error) { return h.SpeedupFigure(NonNumericSuites()) }

// Figure3 regenerates the numeric speedup figure.
func (h *Harness) Figure3() ([]FigureRow, error) { return h.SpeedupFigure(NumericSuites()) }

// Figure4Row is one benchmark of Figure 4. The Outcome fields record why
// a side is missing (OutcomeOK when the speedup is valid).
type Figure4Row struct {
	Name          string
	Suite         Suite
	PDOALLSpeedup float64
	HELIXSpeedup  float64
	PDOALLOutcome core.Outcome
	HELIXOutcome  core.Outcome
}

// Figure4 regenerates the per-benchmark best-PDOALL vs best-HELIX
// comparison across the four SPEC suites. Benchmarks that fail under a
// configuration appear with the failing side annotated instead of being
// dropped.
func (h *Harness) Figure4() ([]Figure4Row, error) {
	suites := []Suite{SuiteINT2000, SuiteINT2006, SuiteFP2000, SuiteFP2006}
	var benches []*Benchmark
	for _, s := range suites {
		benches = append(benches, BySuite(s)...)
	}
	h.Sweep(context.Background(), benches, []core.Config{core.BestPDOALL(), core.BestHELIX()})
	var rows []Figure4Row
	for _, b := range benches {
		row := Figure4Row{Name: b.Name, Suite: b.Suite}
		if rp, err := h.Report(b, core.BestPDOALL()); err != nil {
			row.PDOALLOutcome = core.Classify(err)
		} else {
			row.PDOALLSpeedup = rp.Speedup()
		}
		if rh, err := h.Report(b, core.BestHELIX()); err != nil {
			row.HELIXOutcome = core.Classify(err)
		} else {
			row.HELIXSpeedup = rh.Speedup()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure5Configs are the coverage configurations of Figure 5.
func Figure5Configs() []core.Config {
	return []core.Config{
		{Model: core.PDOALL, Reduc: 0, Dep: 0, Fn: 2},
		{Model: core.HELIX, Reduc: 0, Dep: 0, Fn: 2},
		{Model: core.HELIX, Reduc: 0, Dep: 1, Fn: 2},
	}
}

// Figure5Row is one bar group of Figure 5: geomean coverage (percent) per
// suite for one configuration, with per-suite annotations for incomplete
// cells.
type Figure5Row struct {
	Config   core.Config
	PerSuite map[Suite]float64
	Notes    map[Suite]string
}

// Figure5 regenerates the dynamic-coverage figure, degrading gracefully
// over failed cells.
func (h *Harness) Figure5() ([]Figure5Row, error) {
	h.Sweep(context.Background(), All(), Figure5Configs())
	var rows []Figure5Row
	for _, cfg := range Figure5Configs() {
		row := Figure5Row{Config: cfg, PerSuite: map[Suite]float64{}, Notes: map[Suite]string{}}
		for _, s := range AllSuites() {
			st := h.suiteStatOf(s, cfg, coverageMetric)
			row.PerSuite[s] = st.Geo
			if n := st.Note(); n != "" {
				row.Notes[s] = n
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// figureCell renders one suite cell: the value when complete, "n/a(...)"
// when empty, and "value *k/n" when partial.
func figureCell(val string, note string) string {
	switch {
	case note == "":
		return val
	case strings.HasPrefix(note, "n/a"):
		return note
	default:
		return val + " *" + note
	}
}

// FormatSpeedupFigure renders Figure 2/3 rows as a text table. Incomplete
// cells are annotated: "n/a(steps)" when every benchmark of the suite
// failed, "value *k/n" when the geomean covers only k of n benchmarks.
func FormatSpeedupFigure(title string, suites []Suite, rows []FigureRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s", "configuration")
	for _, s := range suites {
		fmt.Fprintf(&b, " %16s", string(s))
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s", r.Config.String())
		for _, s := range suites {
			cell := figureCell(fmt.Sprintf("%.2fx", r.PerSuite[s]), r.Notes[s])
			fmt.Fprintf(&b, " %16s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure4 renders Figure 4 rows as a text table sorted by suite.
// Failed sides render as "n/a(<class>)" and leave no winner.
func FormatFigure4(rows []Figure4Row) string {
	sorted := append([]Figure4Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Suite != sorted[j].Suite {
			return sorted[i].Suite < sorted[j].Suite
		}
		return sorted[i].Name < sorted[j].Name
	})
	var b strings.Builder
	b.WriteString("Figure 4: per-benchmark speedups, best PDOALL (reduc1-dep2-fn2) vs best HELIX (reduc1-dep1-fn2)\n")
	fmt.Fprintf(&b, "%-16s %-10s %12s %12s %8s\n", "benchmark", "suite", "PDOALL", "HELIX", "winner")
	for _, r := range sorted {
		pd, hx := fmt.Sprintf("%.2fx", r.PDOALLSpeedup), fmt.Sprintf("%.2fx", r.HELIXSpeedup)
		if r.PDOALLOutcome != core.OutcomeOK {
			pd = "n/a(" + r.PDOALLOutcome.Short() + ")"
		}
		if r.HELIXOutcome != core.OutcomeOK {
			hx = "n/a(" + r.HELIXOutcome.Short() + ")"
		}
		winner := "-"
		if r.PDOALLOutcome == core.OutcomeOK && r.HELIXOutcome == core.OutcomeOK {
			winner = "HELIX"
			if r.PDOALLSpeedup > r.HELIXSpeedup {
				winner = "PDOALL"
			}
		}
		fmt.Fprintf(&b, "%-16s %-10s %12s %12s %8s\n",
			r.Name, string(r.Suite), pd, hx, winner)
	}
	return b.String()
}

// FormatFigure5 renders Figure 5 rows as a text table, annotating
// incomplete cells like FormatSpeedupFigure.
func FormatFigure5(rows []Figure5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: GEOMEAN dynamic coverage (% of instructions in parallel loops)\n")
	fmt.Fprintf(&b, "%-28s", "configuration")
	for _, s := range AllSuites() {
		fmt.Fprintf(&b, " %16s", string(s))
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s", r.Config.String())
		for _, s := range AllSuites() {
			cell := figureCell(fmt.Sprintf("%.1f%%", r.PerSuite[s]), r.Notes[s])
			fmt.Fprintf(&b, " %16s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
