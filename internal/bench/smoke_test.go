package bench

import (
	"testing"

	"loopapalooza/internal/core"
)

// TestAllBenchmarksCompileAndRun is the substrate smoke test: every
// registered kernel must compile, analyze, execute deterministically, and
// produce a sane report under a representative configuration.
func TestAllBenchmarksCompileAndRun(t *testing.T) {
	if len(All()) == 0 {
		t.Fatal("no benchmarks registered")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			r1, err := b.Run(core.Config{Model: core.HELIX, Reduc: 1, Dep: 1, Fn: 2})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if r1.SerialCost < 10_000 {
				t.Errorf("serial cost = %d, suspiciously small workload", r1.SerialCost)
			}
			if r1.SerialCost > 20_000_000 {
				t.Errorf("serial cost = %d, workload too large for the harness", r1.SerialCost)
			}
			if s := r1.Speedup(); s < 1 || s > 100000 {
				t.Errorf("speedup = %.2f out of sane range", s)
			}
			if c := r1.Coverage(); c < 0 || c > 1.0000001 {
				t.Errorf("coverage = %f out of [0,1]", c)
			}
			if len(r1.Loops) == 0 {
				t.Error("no loops found")
			}
			// Determinism.
			r2, err := b.Run(core.Config{Model: core.HELIX, Reduc: 1, Dep: 1, Fn: 2})
			if err != nil {
				t.Fatal(err)
			}
			if r1.SerialCost != r2.SerialCost || r1.ParallelCost != r2.ParallelCost {
				t.Errorf("nondeterministic run: %d/%d vs %d/%d",
					r1.SerialCost, r1.ParallelCost, r2.SerialCost, r2.ParallelCost)
			}
		})
	}
}
