package bench

// SpecFP2000-like kernels: regular scientific loop nests. Each kernel is a
// composite of the phases the limit study distinguishes: a strictly
// sequential "input read" (seed mixing through memory, produced early so
// only HELIX extracts anything), map/stencil loops (parallel under plain
// DOALL), dot-product reductions (unlocked by reduc1), loops with pure math
// or instrumented helper calls (unlocked by fn2), and a serial mixing
// checksum. FP2000 leans on reductions, matching the paper's note that it
// benefits most from reduc1.

func init() {
	register(&Benchmark{
		Name:    "168.wupwise",
		Suite:   SuiteFP2000,
		Modeled: "complex matrix-vector sweeps: row dot-product reductions (reduc1) plus map updates (DOALL)",
		Source: `
var chkm [1]int;
const N = 40;
var mre [N * N]float;
var mim [N * N]float;
var vre [N]float;
var vim [N]float;
var ore [N]float;
var oim [N]float;
func main() int {
	var i int; var j int;
	for (i = 0; i < N * N; i = i + 1) {
		var sv int = rand();
		mre[i] = float(sv % 37) * 0.05 - 0.9;
		mim[i] = float((sv >> 8) % 41) * 0.05 - 1.0;
	}
	for (i = 0; i < N; i = i + 1) {
		vre[i] = float(i % 9) * 0.2;
		vim[i] = float(i % 5) * 0.3;
	}
	var sweep int;
	for (sweep = 0; sweep < 12; sweep = sweep + 1) {
		for (i = 0; i < N; i = i + 1) {
			var sre float = 0.0;
			var sim float = 0.0;
			for (j = 0; j < N; j = j + 1) {
				var ar float = mre[i * N + j];
				var ai float = mim[i * N + j];
				sre = sre + ar * vre[j] - ai * vim[j];
				sim = sim + ar * vim[j] + ai * vre[j];
			}
			ore[i] = sre;
			oim[i] = sim;
		}
		// Map update: DOALL-parallel.
		for (i = 0; i < N; i = i + 1) {
			vre[i] = ore[i] * 0.01 + vre[i] * 0.5;
			vim[i] = oim[i] * 0.01 + vim[i] * 0.5;
		}
		// Convergence norm: a reduction over the vector.
		var nrm float = 0.0;
		for (i = 0; i < N; i = i + 1) { nrm = nrm + vre[i] * vre[i] + vim[i] * vim[i]; }
		vre[0] = vre[0] + nrm * 0.0001;
	}
	for (i = 0; i < N; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int((vre[i] + vim[i]) * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "171.swim",
		Suite:   SuiteFP2000,
		Modeled: "shallow-water 2D stencil: grid updates DOALL within a step; serial grid input",
		Source: `
var chkm [1]int;
const W = 30;
const H = 30;
var u [W * H]float;
var v [W * H]float;
var unew [W * H]float;
func main() int {
	var i int; var j int;
	for (i = 0; i < W * H; i = i + 1) {
		var sv int = rand();
		u[i] = float(sv % 23) * 0.1 + float((sv >> 4) % 7) * 0.01;
		v[i] = float((sv >> 6) % 19) * 0.1 - float((sv >> 12) % 5) * 0.02;
	}
	var t int;
	var norm float = 0.0;
	for (t = 0; t < 16; t = t + 1) {
		for (i = 1; i < H - 1; i = i + 1) {
			for (j = 1; j < W - 1; j = j + 1) {
				var c int = i * W + j;
				unew[c] = 0.2 * (u[c] + u[c - 1] + u[c + 1] + u[c - W] + u[c + W]) + 0.05 * v[c];
			}
		}
		for (i = 1; i < H - 1; i = i + 1) {
			for (j = 1; j < W - 1; j = j + 1) {
				var c int = i * W + j;
				u[c] = unew[c];
				v[c] = v[c] * 0.99 + unew[c] * 0.01;
			}
		}
		// In-place boundary relaxation: u[i] depends on u[i-1],
		// written first with independent smoothing work after — the
		// HELIX-pipelinable recurrence of SSOR-style codes.
		for (i = 1; i < W * H; i = i + 1) {
			u[i] = u[i] * 0.9 + u[i - 1] * 0.1;
			var w float = u[i];
			v[i] = v[i] * 0.95 + (w * w * 0.003 + w * 0.01) * 0.05;
		}
		// Stability check: a whole-grid reduction every step.
		norm = 0.0;
		for (i = 0; i < W * H; i = i + 1) { norm = norm + fabs(u[i]); }
	}
	chkm[0] = int(norm);
	for (i = 0; i < W * H; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int(u[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "172.mgrid",
		Suite:   SuiteFP2000,
		Modeled: "multigrid smoother: 3D 7-point stencil (DOALL) with residual-norm reductions (reduc1)",
		Source: `
var chkm [1]int;
const D = 10;
var a [D * D * D]float;
var b [D * D * D]float;
func main() int {
	var i int;
	for (i = 0; i < D * D * D; i = i + 1) {
		var sv int = rand();
		a[i] = float(sv % 31) * 0.1;
	}
	var it int;
	var norm float = 0.0;
	for (it = 0; it < 14; it = it + 1) {
		var z int;
		for (z = 1; z < D - 1; z = z + 1) {
			var y int;
			for (y = 1; y < D - 1; y = y + 1) {
				var x int;
				for (x = 1; x < D - 1; x = x + 1) {
					var c int = (z * D + y) * D + x;
					b[c] = a[c] * 0.4
						+ 0.1 * (a[c - 1] + a[c + 1] + a[c - D] + a[c + D] + a[c - D * D] + a[c + D * D]);
				}
			}
		}
		// In-place line relaxation: a recurrence along the grid with
		// the producer first and smoothing work after.
		for (i = 1; i < D * D * D; i = i + 1) {
			b[i] = b[i] * 0.85 + b[i - 1] * 0.15;
			var w float = b[i];
			a[i] = a[i] * 0.5 + (w * 0.2 + w * w * 0.001) * 0.5;
		}
		// Residual norm: a reduction over the whole grid.
		norm = 0.0;
		for (i = 0; i < D * D * D; i = i + 1) {
			norm = norm + fabs(b[i] - a[i]);
		}
		for (i = 0; i < D * D * D; i = i + 1) { a[i] = b[i]; }
	}
	chkm[0] = int(norm);
	for (i = 0; i < D * D * D; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int(a[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "173.applu",
		Suite:   SuiteFP2000,
		Modeled: "SSOR wavefront: row sweeps with a frequent memory LCD whose producer lands early (HELIX territory)",
		Source: `
var chkm [1]int;
const N = 56;
const STEPS = 120;
var grid [N * N]float;
var scratch [N]float;
func main() int {
	var i int;
	for (i = 0; i < N * N; i = i + 1) {
		var sv int = rand();
		grid[i] = float(sv % 17) * 0.25;
	}
	var s int;
	for (s = 0; s < STEPS; s = s + 1) {
		var r int = (s * 7) % (N - 1) + 1;
		var j int;
		for (j = 1; j < N; j = j + 1) {
			// The recurrence write lands first; smoothing work after.
			grid[r * N + j] = grid[(r - 1) * N + j] * 0.5 + grid[r * N + j - 1] * 0.3 + 0.2;
			var w float = grid[r * N + j];
			var w2 float = w * w;
			var w3 float = w2 * w;
			scratch[j] = w2 * 0.25 + w * 0.5 + w3 * 0.01 + float(j % 3) * 0.125 - w2 * w2 * 0.0001;
		}
		for (j = 1; j < N; j = j + 1) {
			grid[(r - 1) * N + j] = grid[(r - 1) * N + j] * 0.9 + scratch[j] * 0.1;
		}
	}
	for (i = 0; i < N * N; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int(grid[i] * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "177.mesa",
		Suite:   SuiteFP2000,
		Modeled: "vertex pipeline: per-vertex independence gated by pure math calls (fn-gated)",
		Source: `
var chkm [1]int;
const N = 600;
var vx [N]float;
var vy [N]float;
var vz [N]float;
var ox [N]float;
var oy [N]float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		vx[i] = float(sv % 40) * 0.1 - 2.0;
		vy[i] = float((sv >> 8) % 40) * 0.1 - 2.0;
		vz[i] = float((sv >> 16) % 30) * 0.1 + 1.0;
	}
	var frame int;
	for (frame = 0; frame < 6; frame = frame + 1) {
		var angle float = 0.35 + float(frame) * 0.02;
		for (i = 0; i < N; i = i + 1) {
			var c float = cos(angle);
			var s float = sin(angle);
			var x float = vx[i] * c - vy[i] * s;
			var y float = vx[i] * s + vy[i] * c;
			var inv float = 1.0 / sqrt(vz[i]);
			ox[i] = x * inv + ox[i] * 0.1;
			oy[i] = y * inv + oy[i] * 0.1;
		}
	}
	for (i = 0; i < N; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int((ox[i] + oy[i]) * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "179.art",
		Suite:   SuiteFP2000,
		Modeled: "ART F1 match: independent per-feature work with a rare late winner update (prefers PDOALL over HELIX)",
		Source: `
var chkm [1]int;
const F = 420;
const PASSES = 26;
var weights [F]float;
var input [F]float;
var winner [4]float;
func main() int {
	var i int;
	for (i = 0; i < F; i = i + 1) {
		var sv int = rand();
		weights[i] = float(sv % 50) * 0.02;
		input[i] = float((sv >> 8) % 50) * 0.02;
	}
	var p int;
	winner[1] = 0.5;
	for (p = 0; p < PASSES; p = p + 1) {
		var passbest float = 0.0;
		for (i = 0; i < F; i = i + 1) {
			// Vigilance read at the very top of the iteration.
			var vig float = winner[0];
			var m float = fmin(weights[i], input[(i + p * 37) % F]);
			weights[i] = weights[i] * 0.999 + m * 0.001;
			passbest = fmax(passbest, m);
			// Rare winner update at the very end: early-consumer,
			// late-producer, so HELIX synchronization buys nothing
			// while PDOALL restarts only on the rare improvements.
			if (m > vig) {
				winner[0] = m;
			}
		}
		// Pass threshold: produced after the whole pass, consumed by
		// the next pass's first iterations through winner[1].
		winner[1] = winner[1] * 0.5 + passbest * 0.5;
		weights[p % F] = weights[p % F] + winner[1] * 0.001;
	}
	chkm[0] = int(winner[0] * 1000.0);
	for (i = 0; i < F; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int(weights[i] * 1000.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "183.equake",
		Suite:   SuiteFP2000,
		Modeled: "sparse matvec: per-row gather reductions (reduc1) over indirect read-only indices",
		Source: `
var chkm [1]int;
const NODES = 400;
const PER = 5;
var col [NODES * PER]int;
var valm [NODES * PER]float;
var x [NODES]float;
var y [NODES]float;
func main() int {
	var i int;
	for (i = 0; i < NODES * PER; i = i + 1) {
		var sv int = rand();
		col[i] = sv % NODES;
		valm[i] = float((sv >> 8) % 13) * 0.1;
	}
	for (i = 0; i < NODES; i = i + 1) { x[i] = float(i % 21) * 0.05; }
	var step int;
	for (step = 0; step < 18; step = step + 1) {
		for (i = 0; i < NODES; i = i + 1) {
			var acc float = 0.0;
			var k int;
			for (k = 0; k < PER; k = k + 1) {
				acc = acc + valm[i * PER + k] * x[col[i * PER + k]];
			}
			y[i] = acc;
		}
		// Implicit time integration: x[i] depends on x[i-1], written
		// first, with damping work after (HELIX-pipelinable).
		for (i = 1; i < NODES; i = i + 1) {
			x[i] = x[i] + x[i - 1] * 0.05;
			var w float = x[i];
			y[i] = y[i] * 0.9 + (w * 0.1 + w * w * 0.002) * 0.1;
		}
		// Energy norm: a whole-vector reduction every step.
		var en float = 0.0;
		for (i = 0; i < NODES; i = i + 1) { en = en + y[i] * y[i]; }
		for (i = 0; i < NODES; i = i + 1) { x[i] = x[i] * 0.9 + y[i] * 0.001 + en * 0.000001; }
	}
	for (i = 0; i < NODES; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int(x[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "188.ammp",
		Suite:   SuiteFP2000,
		Modeled: "molecular dynamics: pairwise force loops calling an instrumented helper (fn2), per-atom reductions (reduc1)",
		Source: `
var chkm [1]int;
const ATOMS = 70;
var px [ATOMS]float;
var py [ATOMS]float;
var fx [ATOMS]float;
var fy [ATOMS]float;
func pair_force(d2 float) float {
	var inv float = 1.0 / (d2 + 0.1);
	return inv * inv - 0.05 * inv;
}
func main() int {
	var i int; var j int;
	for (i = 0; i < ATOMS; i = i + 1) {
		var sv int = rand();
		px[i] = float(sv % 100) * 0.1;
		py[i] = float((sv >> 8) % 100) * 0.1;
	}
	var step int;
	for (step = 0; step < 4; step = step + 1) {
		for (i = 0; i < ATOMS; i = i + 1) {
			var sx float = 0.0;
			var sy float = 0.0;
			for (j = 0; j < ATOMS; j = j + 1) {
				if (j != i) {
					var dx float = px[j] - px[i];
					var dy float = py[j] - py[i];
					var f float = pair_force(dx * dx + dy * dy);
					sx = sx + f * dx;
					sy = sy + f * dy;
				}
			}
			fx[i] = sx;
			fy[i] = sy;
		}
		for (i = 0; i < ATOMS; i = i + 1) {
			px[i] = px[i] + fx[i] * 0.001;
			py[i] = py[i] + fy[i] * 0.001;
		}
	}
	for (i = 0; i < ATOMS; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int((px[i] + py[i]) * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "301.apsi",
		Suite:   SuiteFP2000,
		Modeled: "column physics: columns independent, each carrying a predictable vertical recurrence (dep2 territory via the per-column seed cursor)",
		Source: `
var chkm [1]int;
const COLS = 80;
const LEVELS = 36;
var temp [COLS * LEVELS]float;
var outp [COLS * LEVELS]float;
var stride [1]int;
func main() int {
	var i int;
	for (i = 0; i < COLS * LEVELS; i = i + 1) {
		var sv int = rand();
		temp[i] = float(sv % 43) * 0.1;
	}
	stride[0] = LEVELS;
	var sweepn int;
	for (sweepn = 0; sweepn < 12; sweepn = sweepn + 1) {
		// Column cursor advances by a memory-loaded stride:
		// non-computable for SCEV, trivially predictable at run
		// time (dep2).
		var base int = 0;
		var c int;
		for (c = 0; c < COLS; c = c + 1) {
			var accum float = float(sweepn) * 0.01;
			var l int;
			for (l = 0; l < LEVELS; l = l + 1) {
				accum = accum * 0.95 + temp[base + l] * 0.05;
				outp[base + l] = accum;
			}
			base = base + stride[0];
		}
		for (i = 0; i < COLS * LEVELS; i = i + 1) { temp[i] = temp[i] * 0.98 + outp[i] * 0.02; }
	}
	for (i = 0; i < COLS * LEVELS; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int(outp[i] * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})
}
