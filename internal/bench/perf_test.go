package bench

import (
	"context"
	"runtime"
	"testing"

	"loopapalooza/internal/core"
)

// sweepConfigs is the macro-benchmark configuration grid: one config per
// execution model at permissive flags, the shape of a figure regeneration.
func sweepConfigs() []core.Config {
	return []core.Config{
		{Model: core.DOALL, Reduc: 1, Dep: 0, Fn: 2},
		{Model: core.PDOALL, Reduc: 1, Dep: 2, Fn: 2},
		{Model: core.HELIX, Reduc: 1, Dep: 2, Fn: 2},
	}
}

// BenchmarkSweepSuite is the end-to-end macro benchmark: a full sweep of
// the EEMBC suite across the model grid, through the fault-isolated
// harness (fresh per op, so every op re-runs every cell; the per-benchmark
// analysis once-cells are process-wide and shared, as in production
// figure regeneration). Sub-benchmarks select the dependence tracker.
func BenchmarkSweepSuite(b *testing.B) {
	benches := BySuite(SuiteEEMBC)
	if len(benches) == 0 {
		b.Fatal("no EEMBC benchmarks registered")
	}
	// Warm the analysis once-cells so both sub-benchmarks measure pure
	// sweep execution.
	for _, bm := range benches {
		if _, err := bm.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	for _, kind := range []core.TrackerKind{core.TrackerShadow, core.TrackerLegacyMap} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := NewHarnessWith(HarnessOptions{Run: core.RunOptions{Tracker: kind}})
				sr := h.Sweep(context.Background(), benches, sweepConfigs())
				if sr.OK() != len(benches)*len(sweepConfigs()) {
					b.Fatalf("sweep failures: %s", sr.Summary())
				}
			}
		})
	}
}

// BenchmarkSweepFanout measures the full fourteen-configuration paper-grid
// sweep of the EEMBC suite with the run-once fan-out against the
// one-execution-per-cell baseline — the headline number of the run-once
// layer (BENCH_PR5.json's fanout_vs_perconfig table). Reports are
// bit-identical between the two modes; only the interpretation count
// differs (1 vs 14 per benchmark).
func BenchmarkSweepFanout(b *testing.B) {
	benches := BySuite(SuiteEEMBC)
	if len(benches) == 0 {
		b.Fatal("no EEMBC benchmarks registered")
	}
	for _, bm := range benches {
		if _, err := bm.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	cfgs := core.PaperConfigs()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fanout", false}, {"per-config", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := NewHarnessWith(HarnessOptions{DisableFanout: mode.disable})
				sr := h.Sweep(context.Background(), benches, cfgs)
				if sr.OK() != len(benches)*len(cfgs) {
					b.Fatalf("sweep failures: %s", sr.Summary())
				}
			}
		})
	}
}

// BenchmarkSweepBatched measures the batched chunk-replay tracker path
// against per-event hook dispatch over the same run-once fan-out: the full
// paper-grid sweep of the EEMBC suite, with core.MultiRun feeding engines
// whole sealed chunks (one tracker call per memory span per instance)
// versus dispatching every event through the interp.Hooks interface.
// Reports are bit-identical between the two modes — the differential
// oracles pin that — so this pair isolates the dispatch-amortization win
// (BENCH_PR9.json's batched_vs_perevent table).
// BenchmarkSweepParallel measures the cross-core fan-out pool against the
// single-goroutine chunked path on the same run-once sweep: the full
// paper-grid sweep of the EEMBC suite at Parallelism 1 (serial, chunked
// replay on one goroutine) versus one pool worker per CPU (engine classes
// sharded by class affinity, all reading the shared span summaries).
// Reports are bit-identical at every width — the differential oracles pin
// that — so this pair isolates the multi-core scaling win
// (BENCH_PR10.json's parallel_vs_serial table).
func BenchmarkSweepParallel(b *testing.B) {
	benches := BySuite(SuiteEEMBC)
	if len(benches) == 0 {
		b.Fatal("no EEMBC benchmarks registered")
	}
	for _, bm := range benches {
		if _, err := bm.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	cfgs := core.PaperConfigs()
	for _, mode := range []struct {
		name string
		p    int
	}{{"serial", 1}, {"parallel", runtime.NumCPU()}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := NewHarnessWith(HarnessOptions{Run: core.RunOptions{Parallelism: mode.p}})
				sr := h.Sweep(context.Background(), benches, cfgs)
				if sr.OK() != len(benches)*len(cfgs) {
					b.Fatalf("sweep failures: %s", sr.Summary())
				}
			}
		})
	}
}

func BenchmarkSweepBatched(b *testing.B) {
	benches := BySuite(SuiteEEMBC)
	if len(benches) == 0 {
		b.Fatal("no EEMBC benchmarks registered")
	}
	for _, bm := range benches {
		if _, err := bm.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	cfgs := core.PaperConfigs()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"batched", false}, {"per-event", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := NewHarnessWith(HarnessOptions{Run: core.RunOptions{DisableBatch: mode.disable}})
				sr := h.Sweep(context.Background(), benches, cfgs)
				if sr.OK() != len(benches)*len(cfgs) {
					b.Fatalf("sweep failures: %s", sr.Summary())
				}
			}
		})
	}
}
