package bench

// SpecINT2000-like kernels. Non-numeric loop behaviour: frequent
// non-computable register LCDs (cursors, state machines, output positions),
// frequent read-modify-write memory LCDs through shared tables, and calls
// inside hot loops. Producers of the hand-off values mostly execute early in
// the iteration with independent work after them — the structure HELIX-style
// synchronization (dep1-fn2) exploits while DOALL/PDOALL cannot.
//
// Every kernel starts with a serial "input read" (a seedm[0]-mixing recurrence,
// standing in for the strictly sequential file input of the real programs)
// and ends with a mixing checksum, so a genuinely sequential fraction bounds
// all configurations, as in the paper's measurements.

func init() {
	register(&Benchmark{
		Name:    "164.gzip",
		Suite:   SuiteINT2000,
		Modeled: "LZ77 deflate: data-dependent cursor advance produced early; hash-chain RMW each token; CRC helper call",
		Source: `
var seedm [1]int;
var chkm [1]int;
const N = 3000;
const HASHSZ = 32;
var data [N]int;
var hashtab [HASHSZ]int;
var window [N]int;
var outbuf [N]int;
func crc8(code int) int {
	var crc int = code;
	var k int;
	for (k = 0; k < 14; k = k + 1) {
		crc = ((crc << 1) ^ (crc >> 7) ^ k) & 255;
	}
	return crc;
}
func main() int {
	var i int;
	seedm[0] = 9157;
	for (i = 0; i < N; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		data[i] = seedm[0] % 251;
	}
	// Pre-filter the window: independent per byte (DOALL-able).
	for (i = 0; i < N; i = i + 1) {
		window[i] = (data[i] * 3 + (data[i] >> 2)) % 256;
	}
	var pos int = 0;
	var outp int = 0;
	while (pos < N - 8) {
		// Cursor hand-off produced at the top of the iteration.
		var h int = (window[pos] * 33 + window[pos + 1]) % HASHSZ;
		var cand int = hashtab[h];
		hashtab[h] = pos;
		var mlen int = 1;
		if (cand > 0 && data[cand % N] == data[pos]) { mlen = 2 + (data[pos] % 3); }
		pos = pos + mlen;
		// Independent tail: emit and CRC the token.
		outbuf[outp % N] = crc8(data[pos % N] * 4 + mlen);
		outp = outp + 1;
	}
	chkm[0] = pos + outp;
	for (i = 0; i < N; i = i + 1) { chkm[0] = (chkm[0] * 31 + outbuf[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "175.vpr",
		Suite:   SuiteINT2000,
		Modeled: "placement annealing: per-net bounding boxes via pure helpers; running cost feeds the accept decision; committed moves mutate shared pin state",
		Source: `
var seedm [1]int;
var chkm [1]int;
const NETS = 260;
const PINS = 6;
var pinx [NETS * PINS]int;
var piny [NETS * PINS]int;
var netcost [NETS]int;
func main() int {
	var i int;
	seedm[0] = 4099;
	for (i = 0; i < NETS * PINS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		pinx[i] = seedm[0] % 64;
		piny[i] = (seedm[0] >> 8) % 64;
	}
	var pass int;
	var total int = 0;
	for (pass = 0; pass < 4; pass = pass + 1) {
		var n int;
		for (n = 0; n < NETS; n = n + 1) {
			var xmin int = 1000; var xmax int = 0;
			var ymin int = 1000; var ymax int = 0;
			var p int;
			for (p = 0; p < PINS; p = p + 1) {
				xmin = min(xmin, pinx[n * PINS + p]);
				xmax = max(xmax, pinx[n * PINS + p]);
				ymin = min(ymin, piny[n * PINS + p]);
				ymax = max(ymax, piny[n * PINS + p]);
			}
			var cost int = (xmax - xmin) + (ymax - ymin);
			netcost[n] = cost;
			// The running total feeds the accept decision: a
			// register LCD no reduction rewrite can decouple.
			total = total + cost;
			if (total % 13 < 4) {
				var victim int = (n + 1 + total % 6) % NETS;
				pinx[victim * PINS] = (pinx[victim * PINS] + total) % 64;
			}
		}
	}
	chkm[0] = total;
	for (i = 0; i < NETS; i = i + 1) { chkm[0] = (chkm[0] * 31 + netcost[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "176.gcc",
		Suite:   SuiteINT2000,
		Modeled: "dataflow sweep: def/use table RMW per insn (frequent, early producer); cost estimation helper per insn",
		Source: `
var seedm [1]int;
var chkm [1]int;
const INSNS = 2200;
const REGS = 24;
var opcode [INSNS]int;
var def [INSNS]int;
var use1 [INSNS]int;
var lastdef [REGS]int;
var chains [INSNS]int;
func insn_cost(op int, base int) int {
	var cost int = 0;
	var k int;
	for (k = 0; k < 3 + op % 4; k = k + 1) { cost = cost + ((base + k) * 7) % 13; }
	return cost;
}
func main() int {
	var i int;
	seedm[0] = 77;
	for (i = 0; i < INSNS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		opcode[i] = seedm[0] % 8;
		def[i] = (seedm[0] >> 4) % REGS;
		use1[i] = (seedm[0] >> 10) % REGS;
	}
	for (i = 0; i < INSNS; i = i + 1) {
		// Def-use chain RMW early in the iteration.
		var src int = lastdef[use1[i]];
		lastdef[def[i]] = i;
		chains[i] = src + insn_cost(opcode[i], i) * 100;
	}
	chkm[0] = 0;
	for (i = 0; i < INSNS; i = i + 1) { chkm[0] = (chkm[0] * 31 + chains[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "181.mcf",
		Suite:   SuiteINT2000,
		Modeled: "network simplex pricing: arc scans with infrequent potential updates written late (a PDOALL-friendly profile)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const ARCS = 2000;
const NODES = 48;
var tail [ARCS]int;
var head [ARCS]int;
var arccost [ARCS]int;
var potential [NODES]int;
func main() int {
	var i int;
	seedm[0] = 311;
	for (i = 0; i < ARCS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		tail[i] = seedm[0] % NODES;
		head[i] = (seedm[0] >> 7) % NODES;
		arccost[i] = (seedm[0] >> 14) % 50 - 25;
	}
	for (i = 0; i < NODES; i = i + 1) { potential[i] = (i * 11) % 40; }
	var pass int;
	var pushes int = 0;
	for (pass = 0; pass < 4; pass = pass + 1) {
		var a int;
		for (a = 0; a < ARCS; a = a + 1) {
			var red int = arccost[a] + potential[tail[a]] - potential[head[a]];
			// Infrequent: only strongly negative arcs update the
			// potentials, and the write lands late in the iteration.
			if (red < -30) {
				potential[head[a]] = potential[head[a]] + red / 2;
				pushes = pushes + 1;
			}
		}
	}
	chkm[0] = pushes;
	for (i = 0; i < NODES; i = i + 1) { chkm[0] = (chkm[0] * 31 + potential[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "186.crafty",
		Suite:   SuiteINT2000,
		Modeled: "move evaluation: popcount helper per move; running best-score bound consumed by pruning (late producer); history table RMW",
		Source: `
var seedm [1]int;
var chkm [1]int;
const MOVES = 1200;
const HIST = 96;
var board [64]int;
var history [HIST]int;
var scores [MOVES]int;
func popcount(x int) int {
	var c int = 0;
	var v int = x;
	while (v != 0) {
		c = c + (v & 1);
		v = v >> 1;
	}
	return c;
}
func main() int {
	var i int;
	seedm[0] = 5501;
	for (i = 0; i < 64; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		board[i] = seedm[0] % 256;
	}
	var m int;
	var bound int = 0;
	for (m = 0; m < MOVES; m = m + 1) {
		var from int = (m * 17) % 64;
		var to int = (m * 41 + 9) % 64;
		var atk int = board[from] ^ board[to];
		// Node counter: an every-iteration RMW through memory.
		history[0] = history[0] + 1;
		var sc int = popcount(atk & 85) * 4 + popcount(atk & 170);
		if (sc > bound - 3) {
			history[(from * 2 + to) % HIST] = history[(from * 2 + to) % HIST] + sc;
			// The pruning bound is produced at the very end of the
			// iteration and consumed at the top of the next.
			bound = (bound * 3 + sc) / 4;
		}
		scores[m] = sc;
	}
	chkm[0] = bound;
	for (i = 0; i < HIST; i = i + 1) { chkm[0] = (chkm[0] * 31 + history[i]) % 65521; }
	for (i = 0; i < MOVES; i = i + 1) { chkm[0] = (chkm[0] * 31 + scores[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "197.parser",
		Suite:   SuiteINT2000,
		Modeled: "tokenizer: cursor/state advance early; dictionary bucket RMW each token (frequent memory LCD); scoring fills the body",
		Source: `
var seedm [1]int;
var chkm [1]int;
const N = 2800;
const DICT = 96;
var text [N]int;
var dict [DICT]int;
var links [N]int;
func main() int {
	var i int;
	seedm[0] = 8231;
	for (i = 0; i < N; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		text[i] = seedm[0] % 27;
	}
	for (i = 0; i < DICT; i = i + 1) { dict[i] = (i * 37 + 11) % 100; }
	var pos int = 0;
	var state int = 1;
	var nlinks int = 0;
	while (pos < N - 4) {
		// Cursor and parse state produced first.
		var tlen int = 1 + (text[pos] % 3);
		var tok int = text[pos] * 27 + text[pos + 1];
		pos = pos + tlen;
		state = (state * 5 + tok) % 211;
		// Dictionary stat + bucket update: frequent RMW, still early.
		dict[0] = (dict[0] + tlen) % 997;
		var bucket int = 1 + tok % (DICT - 1);
		dict[bucket] = (dict[bucket] + state) % 997;
		// Independent: score the token.
		var score int = tok;
		var k int;
		for (k = 0; k < 14; k = k + 1) { score = (score * 3 + k) % 997; }
		links[nlinks % N] = score;
		nlinks = nlinks + 1;
	}
	chkm[0] = state + nlinks;
	for (i = 0; i < N; i = i + 1) { chkm[0] = (chkm[0] * 31 + links[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "253.perlbmk",
		Suite:   SuiteINT2000,
		Modeled: "bytecode interpreter: accumulator/stack state advance early; symbol-table RMW per op; opcode body is independent hashing",
		Source: `
var seedm [1]int;
var chkm [1]int;
const OPS = 1800;
const HSIZE = 128;
var prog [OPS]int;
var hashtab [HSIZE]int;
var stackv [64]int;
func main() int {
	var i int;
	seedm[0] = 40961;
	for (i = 0; i < OPS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		prog[i] = seedm[0] % 64;
	}
	var sp int = 0;
	var acc int = 7;
	for (i = 0; i < OPS; i = i + 1) {
		var op int = prog[i];
		// Interpreter state first.
		acc = (acc * 33 + op) % 65536;
		if (op % 4 == 0 && sp < 63) { sp = sp + 1; }
		if (op % 7 == 0 && sp > 0) { sp = sp - 1; }
		stackv[sp] = acc % 1000;
		// Op counter + symbol table RMW (frequent, early).
		hashtab[0] = hashtab[0] + 1;
		var h int = 1 + (op * 97 + 13) % (HSIZE - 1);
		hashtab[h] = (hashtab[h] + acc) % 9973;
		// Independent: probe-sequence hashing.
		var probe int = 0;
		var k int;
		for (k = 0; k < 12; k = k + 1) { probe = (probe * 2 + ((op >> (k % 6)) & 1)) % 509; }
		stackv[(sp + probe) % 64] = probe;
	}
	chkm[0] = acc + sp;
	for (i = 0; i < HSIZE; i = i + 1) { chkm[0] = (chkm[0] * 31 + hashtab[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "254.gap",
		Suite:   SuiteINT2000,
		Modeled: "orbit computation: worklist head/tail produced early; permutation power arithmetic independent",
		Source: `
var seedm [1]int;
var chkm [1]int;
const N = 1009;
var orbit [N]int;
var seen [N]int;
var queue [2048]int;
func main() int {
	var i int;
	seedm[0] = 6709;
	for (i = 0; i < N; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		orbit[i] = seedm[0] % N;
	}
	var headp int = 0;
	var tailp int = 1;
	queue[0] = 1;
	seen[1] = 1;
	var steps int = 0;
	while (headp < tailp && steps < 1600) {
		// Worklist cursor produced first.
		var x int = queue[headp];
		headp = headp + 1;
		steps = steps + 1;
		var y int = orbit[x];
		if (seen[y] == 0 && tailp < 2048) {
			seen[y] = 1;
			queue[tailp] = y;
			tailp = tailp + 1;
		}
		// Independent: permutation power arithmetic.
		var p int = x;
		var k int;
		for (k = 0; k < 16; k = k + 1) { p = (p * p + 3) % N; }
		orbit[x] = (orbit[x] + p) % N;
	}
	chkm[0] = headp * 3 + tailp;
	for (i = 0; i < N; i = i + 1) { chkm[0] = (chkm[0] * 31 + orbit[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "255.vortex",
		Suite:   SuiteINT2000,
		Modeled: "object database transactions: instrumented accessor calls touching a small shared record table (frequent RMW inside callees)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const RECORDS = 96;
const TXNS = 800;
var keys [RECORDS]int;
var vals [RECORDS]int;
var journal [TXNS]int;
func db_lookup(k int) int {
	var idx int = (k * 131 + 17) % RECORDS;
	var probe int = 0;
	while (probe < 3 && keys[idx] != k && keys[idx] != 0) {
		idx = (idx + 1) % RECORDS;
		probe = probe + 1;
	}
	return idx;
}
func db_update(idx int, v int) int {
	vals[0] = vals[0] + 1;          // transaction sequence number
	vals[idx] = vals[idx] + v;
	return vals[idx];
}
func main() int {
	var i int;
	for (i = 0; i < RECORDS; i = i + 1) { keys[i] = (i * 7 + 1) % 512; }
	var t int;
	var commit int = 0;
	for (t = 0; t < TXNS; t = t + 1) {
		var k int = (t * 179 + 23) % 512;
		var idx int = db_lookup(k);
		var v int = db_update(idx, (t % 9) + 1);
		journal[t] = v % 251;
		commit = commit + 1;
	}
	chkm[0] = commit;
	for (i = 0; i < TXNS; i = i + 1) { chkm[0] = (chkm[0] * 31 + journal[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "256.bzip2",
		Suite:   SuiteINT2000,
		Modeled: "move-to-front + RLE: rank scan carries a conditional register LCD; MTF table RMW every symbol; RLE state produced late",
		Source: `
var seedm [1]int;
var chkm [1]int;
const N = 2400;
const ALPHA = 16;
var input [N]int;
var mtf [ALPHA]int;
var outv [N]int;
func main() int {
	var i int;
	seedm[0] = 30011;
	for (i = 0; i < N; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		input[i] = seedm[0] % ALPHA;
	}
	for (i = 0; i < ALPHA; i = i + 1) { mtf[i] = i; }
	var run int = 0;
	var prev int = -1;
	for (i = 0; i < N; i = i + 1) {
		var sym int = input[i];
		// Rank scan: conditional rank assignment is a register LCD
		// within the scan; the scan reads cells the previous outer
		// iteration reordered (frequent memory LCD).
		var rank int = 0;
		var k int;
		for (k = ALPHA - 1; k >= 0; k = k - 1) {
			if (mtf[k] == sym) { rank = k; }
		}
		// Shift to front.
		var r int = rank;
		while (r > 0) {
			mtf[r] = mtf[r - 1];
			r = r - 1;
		}
		mtf[0] = sym;
		// RLE state, produced at the end of the iteration.
		if (rank == prev) { run = run + 1; } else { run = 0; }
		prev = rank;
		outv[i] = rank * 4 + min(run, 3);
	}
	chkm[0] = run;
	for (i = 0; i < N; i = i + 1) { chkm[0] = (chkm[0] * 31 + outv[i]) % 65521; }
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "300.twolf",
		Suite:   SuiteINT2000,
		Modeled: "cell swap evaluation: wirelength deltas via abs helpers; moderately frequent committed swaps written late (HELIX-hostile, PDOALL-limited)",
		Source: `
var seedm [1]int;
var chkm [1]int;
const CELLS = 64;
const CANDS = 1000;
var cellx [CELLS]int;
var celly [CELLS]int;
var gains [CANDS]int;
func main() int {
	var i int;
	seedm[0] = 16127;
	for (i = 0; i < CELLS; i = i + 1) {
		seedm[0] = (seedm[0] * 1103515245 + 12345) % 2147483647;
		cellx[i] = seedm[0] % 100;
		celly[i] = (seedm[0] >> 9) % 100;
	}
	var c int;
	var accepted int = 0;
	for (c = 0; c < CANDS; c = c + 1) {
		var a int = (c * 13 + 1) % CELLS;
		var b int = (c * 29 + 3) % CELLS;
		var dax int = cellx[a] - cellx[b];
		var day int = celly[a] - celly[b];
		var before int = abs(dax) + abs(day);
		var after int = abs(dax - 3) + abs(day + 2);
		var gain int = before - after;
		gains[c] = gain;
		// Commit ~10% of candidates: mutates placement other
		// iterations read, written at the end of the iteration.
		if (gain > 0 && (before % 7) < 1) {
			var tx int = cellx[a];
			cellx[a] = cellx[b];
			cellx[b] = tx;
			accepted = accepted + 1;
		}
	}
	chkm[0] = accepted;
	for (i = 0; i < CANDS; i = i + 1) { chkm[0] = (chkm[0] * 31 + gains[i]) % 65521; }
	return chkm[0];
}`,
	})
}
