package bench

// Additional SpecFP2006-like kernels completing the suite roster of the
// paper's Figure 4. Same templates as fp2006.go.

func init() {
	register(&Benchmark{
		Name:    "410.bwaves",
		Suite:   SuiteFP2006,
		Modeled: "blast-wave CFD: flux stencil (DOALL) plus a tridiagonal forward sweep (HELIX recurrence, early producer)",
		Source: `
var chkm [1]int;
const N = 900;
var u [N]float;
var flux [N]float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		u[i] = float(sv % 31) * 0.1;
	}
	var step int;
	for (step = 0; step < 8; step = step + 1) {
		// Flux computation: independent per cell.
		for (i = 1; i < N - 1; i = i + 1) {
			flux[i] = (u[i + 1] - u[i - 1]) * 0.5 + u[i] * 0.1;
		}
		// Tridiagonal forward elimination: recurrence, written first.
		for (i = 1; i < N; i = i + 1) {
			u[i] = u[i] - u[i - 1] * 0.2 + flux[i] * 0.05;
			var w float = u[i];
			flux[i] = flux[i] * 0.9 + (w * 0.1 + w * w * 0.001) * 0.1;
		}
	}
	for (i = 0; i < N; i = i + 7) {
		chkm[0] = (chkm[0] * 31 + int(u[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "435.gromacs",
		Suite:   SuiteFP2006,
		Modeled: "MD nonbonded kernel: neighbor-list forces via instrumented helpers (fn2), per-molecule reductions",
		Source: `
var chkm [1]int;
const MOLS = 90;
const NEIGH = 12;
var pos [MOLS]float;
var vel [MOLS]float;
var nlist [MOLS * NEIGH]int;
func lj(r2 float) float {
	var inv float = 1.0 / (r2 + 0.2);
	var i6 float = inv * inv * inv;
	return i6 * (i6 - 0.5);
}
func main() int {
	var i int; var k int;
	for (i = 0; i < MOLS; i = i + 1) {
		var sv int = rand();
		pos[i] = float(sv % 80) * 0.1;
	}
	for (i = 0; i < MOLS * NEIGH; i = i + 1) { nlist[i] = (i * 59 + 7) % MOLS; }
	var step int;
	for (step = 0; step < 7; step = step + 1) {
		for (i = 0; i < MOLS; i = i + 1) {
			var f float = 0.0;
			for (k = 0; k < NEIGH; k = k + 1) {
				var j int = nlist[i * NEIGH + k];
				var dr float = pos[j] - pos[i];
				f = f + lj(dr * dr) * dr;
			}
			vel[i] = vel[i] * 0.995 + f * 0.001;
		}
		for (i = 0; i < MOLS; i = i + 1) { pos[i] = pos[i] + vel[i] * 0.01; }
	}
	for (i = 0; i < MOLS; i = i + 2) {
		chkm[0] = (chkm[0] * 31 + int(pos[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "436.cactusADM",
		Suite:   SuiteFP2006,
		Modeled: "numerical relativity: wide 3D-ish stencil updates, double-buffered (DOALL floor of the suite)",
		Source: `
var chkm [1]int;
const D = 14;
var g [D * D * D]float;
var gn [D * D * D]float;
func main() int {
	var i int;
	for (i = 0; i < D * D * D; i = i + 1) {
		var sv int = rand();
		g[i] = float(sv % 23) * 0.05;
	}
	var it int;
	for (it = 0; it < 6; it = it + 1) {
		var z int;
		for (z = 1; z < D - 1; z = z + 1) {
			var y int;
			for (y = 1; y < D - 1; y = y + 1) {
				var x int;
				for (x = 1; x < D - 1; x = x + 1) {
					var c int = (z * D + y) * D + x;
					gn[c] = g[c] * 0.5
						+ 0.08 * (g[c - 1] + g[c + 1] + g[c - D] + g[c + D] + g[c - D * D] + g[c + D * D])
						+ 0.002 * g[c] * g[c];
				}
			}
		}
		for (i = 0; i < D * D * D; i = i + 1) { g[i] = gn[i]; }
	}
	for (i = 0; i < D * D * D; i = i + 9) {
		chkm[0] = (chkm[0] * 31 + int(g[i] * 1000.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "437.leslie3d",
		Suite:   SuiteFP2006,
		Modeled: "turbulence LES: strided-plane cursor (dep2-predictable through memory) over independent plane updates",
		Source: `
var chkm [1]int;
const PLANES = 60;
const PSZ = 48;
var field [PLANES * PSZ]float;
var planestep [1]int;
func main() int {
	var i int;
	for (i = 0; i < PLANES * PSZ; i = i + 1) {
		var sv int = rand();
		field[i] = float(sv % 29) * 0.1;
	}
	planestep[0] = PSZ;
	var sweep int;
	for (sweep = 0; sweep < 6; sweep = sweep + 1) {
		var base int = 0;
		var p int;
		for (p = 0; p < PLANES; p = p + 1) {
			var j int;
			for (j = 1; j < PSZ - 1; j = j + 1) {
				field[base + j] = field[base + j] * 0.8
					+ (field[base + j - 1] + field[base + j + 1]) * 0.1;
			}
			base = base + planestep[0];
		}
	}
	for (i = 0; i < PLANES * PSZ; i = i + 11) {
		chkm[0] = (chkm[0] * 31 + int(field[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "459.GemsFDTD",
		Suite:   SuiteFP2006,
		Modeled: "FDTD electromagnetics: leapfrogged E/H field maps (DOALL) with a boundary recurrence (HELIX)",
		Source: `
var chkm [1]int;
const N = 700;
var ef [N]float;
var hf [N]float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		ef[i] = float(sv % 17) * 0.05;
	}
	var t int;
	for (t = 0; t < 9; t = t + 1) {
		// H update from E: independent.
		for (i = 0; i < N - 1; i = i + 1) {
			hf[i] = hf[i] - (ef[i + 1] - ef[i]) * 0.4;
		}
		// E update from H: independent.
		for (i = 1; i < N; i = i + 1) {
			ef[i] = ef[i] - (hf[i] - hf[i - 1]) * 0.4;
		}
		// Absorbing boundary: short recurrence written first.
		for (i = 1; i < N; i = i + 8) {
			ef[i] = ef[i] * 0.7 + ef[i - 1] * 0.3;
			hf[i] = hf[i] * 0.95 + ef[i] * 0.01;
		}
	}
	for (i = 0; i < N; i = i + 7) {
		chkm[0] = (chkm[0] * 31 + int((ef[i] + hf[i]) * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})
}
