package bench

// Additional SpecFP2000-like kernels completing the suite roster the
// paper's Figure 4 draws from. Profiles follow the templates of fp2000.go:
// rand()-gated input, composite hot phases, sampled mixing checksum.

func init() {
	register(&Benchmark{
		Name:    "178.galgel",
		Suite:   SuiteFP2000,
		Modeled: "Galerkin spectral solver: dense matvec reductions (reduc1) with a Gauss-Seidel-style in-place update (HELIX)",
		Source: `
var chkm [1]int;
const N = 44;
var a [N * N]float;
var x [N]float;
var y [N]float;
func main() int {
	var i int; var j int;
	for (i = 0; i < N * N; i = i + 1) {
		var sv int = rand();
		a[i] = float(sv % 19) * 0.05 - 0.45;
	}
	for (i = 0; i < N; i = i + 1) { x[i] = float(i % 7) * 0.1; }
	var it int;
	for (it = 0; it < 10; it = it + 1) {
		// Dense matvec: per-row dot reductions.
		for (i = 0; i < N; i = i + 1) {
			var s float = 0.0;
			for (j = 0; j < N; j = j + 1) { s = s + a[i * N + j] * x[j]; }
			y[i] = s;
		}
		// Gauss-Seidel sweep: in-place, produced first.
		for (i = 1; i < N; i = i + 1) {
			x[i] = x[i] * 0.8 + x[i - 1] * 0.1 + y[i] * 0.01;
			var w float = x[i];
			y[i] = y[i] * 0.9 + (w * w * 0.01 + w * 0.05) * 0.1;
		}
	}
	for (i = 0; i < N; i = i + 1) {
		chkm[0] = (chkm[0] * 31 + int(x[i] * 1000.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "187.facerec",
		Suite:   SuiteFP2000,
		Modeled: "face recognition: gallery distance reductions with a rare best-match update, late-produced (prefers PDOALL)",
		Source: `
var chkm [1]int;
const GALLERY = 90;
const DIM = 32;
var probe [DIM]float;
var gallery [GALLERY * DIM]float;
var best [4]float;
var dists [GALLERY]float;
func main() int {
	var i int;
	for (i = 0; i < DIM; i = i + 1) {
		var sv int = rand();
		probe[i] = float(sv % 40) * 0.05;
	}
	for (i = 0; i < GALLERY * DIM; i = i + 1) {
		var sv int = rand();
		gallery[i] = float(sv % 40) * 0.05;
	}
	best[0] = 1000000.0;
	var pass int;
	for (pass = 0; pass < 6; pass = pass + 1) {
		var g int;
		for (g = 0; g < GALLERY; g = g + 1) {
			var thr float = best[0];
			var d float = 0.0;
			var k int;
			for (k = 0; k < DIM; k = k + 1) {
				var e float = probe[k] - gallery[g * DIM + k];
				d = d + e * e;
			}
			dists[g] = d + thr * 0.0000001;
			if (d < best[0]) { best[0] = d; }
		}
	}
	chkm[0] = int(best[0] * 1000.0);
	for (i = 0; i < GALLERY; i = i + 3) {
		chkm[0] = (chkm[0] * 31 + int(dists[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "189.lucas",
		Suite:   SuiteFP2000,
		Modeled: "Lucas-Lehmer style FFT butterfly passes: log-depth map loops (DOALL) with a carry-propagation recurrence (HELIX)",
		Source: `
var chkm [1]int;
const N = 512;
var re [N]float;
var im [N]float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		re[i] = float(sv % 50) * 0.04 - 1.0;
		im[i] = 0.0;
	}
	var pass int;
	for (pass = 0; pass < 4; pass = pass + 1) {
		// Butterfly pass: disjoint pairs, DOALL.
		var half int = 1 << (pass % 5 + 1);
		for (i = 0; i < N - half; i = i + 1) {
			var ar float = re[i];
			var br float = re[(i + half) % N];
			re[i] = ar + br * 0.5;
			im[i] = im[i] + (ar - br) * 0.25;
		}
		// Carry propagation: recurrence, carry produced first.
		var carry float = 0.0;
		for (i = 0; i < N; i = i + 1) {
			var v float = re[i] + carry;
			carry = floor(v * 0.125);
			var w float = v - carry * 8.0;
			re[i] = w;
			im[i] = im[i] * 0.99 + w * 0.001;
		}
	}
	for (i = 0; i < N; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int((re[i] + im[i]) * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "191.fma3d",
		Suite:   SuiteFP2000,
		Modeled: "crash simulation: per-element stress helpers (fn2) plus nodal scatter with shared-node conflicts",
		Source: `
var chkm [1]int;
const ELEMS = 300;
const NODES2 = 320;
var enode [ELEMS * 2]int;
var stress [ELEMS]float;
var nodal [NODES2]float;
func elem_stress(s float, strain float) float {
	var e float = strain * 2.1;
	return s * 0.98 + e / (1.0 + fabs(e));
}
func main() int {
	var i int;
	for (i = 0; i < ELEMS * 2; i = i + 1) {
		var sv int = rand();
		enode[i] = sv % NODES2;
	}
	var step int;
	for (step = 0; step < 5; step = step + 1) {
		var e int;
		for (e = 0; e < ELEMS; e = e + 1) {
			var n1 int = enode[e * 2];
			var n2 int = enode[e * 2 + 1];
			var strain float = nodal[n1] - nodal[n2] + float((e + step) % 5) * 0.1;
			stress[e] = elem_stress(stress[e], strain);
			// Scatter to shared nodes: occasional conflicts.
			nodal[n1] = nodal[n1] + stress[e] * 0.01;
			nodal[n2] = nodal[n2] - stress[e] * 0.01;
		}
	}
	for (i = 0; i < ELEMS; i = i + 4) {
		chkm[0] = (chkm[0] * 31 + int(stress[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "200.sixtrack",
		Suite:   SuiteFP2000,
		Modeled: "particle tracking: per-particle independence gated by math calls, with per-turn aperture reductions",
		Source: `
var chkm [1]int;
const PARTICLES = 220;
var px [PARTICLES]float;
var pv [PARTICLES]float;
var lost [4]float;
func main() int {
	var i int;
	for (i = 0; i < PARTICLES; i = i + 1) {
		var sv int = rand();
		px[i] = float(sv % 100) * 0.01 - 0.5;
		pv[i] = float((sv >> 8) % 100) * 0.002 - 0.1;
	}
	var turn int;
	for (turn = 0; turn < 8; turn = turn + 1) {
		for (i = 0; i < PARTICLES; i = i + 1) {
			var phase float = px[i] * 6.28;
			px[i] = px[i] + pv[i] + sin(phase) * 0.001;
			pv[i] = pv[i] * 0.999 - cos(phase) * 0.0005;
		}
		// Aperture check: a whole-beam reduction per turn.
		var inside float = 0.0;
		for (i = 0; i < PARTICLES; i = i + 1) {
			inside = inside + fabs(px[i]);
		}
		lost[0] = inside;
	}
	chkm[0] = int(lost[0] * 100.0);
	for (i = 0; i < PARTICLES; i = i + 4) {
		chkm[0] = (chkm[0] * 31 + int(px[i] * 1000.0)) % 65521;
	}
	return chkm[0];
}`,
	})
}
