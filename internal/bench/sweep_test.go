package bench

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"loopapalooza/internal/core"
)

// fakeBench builds an unregistered benchmark whose execution is replaced
// by hook — the fault-injection seam of the sweep tests.
func fakeBench(name string, hook func(core.Config, core.RunOptions) (*core.Report, error)) *Benchmark {
	return &Benchmark{
		Name:    name,
		Suite:   SuiteEEMBC,
		Modeled: "test fault injection",
		Source:  `func main() int { return 0; }`,
		runHook: hook,
	}
}

func okReport(name string, cfg core.Config) *core.Report {
	return &core.Report{Benchmark: name, Config: cfg, SerialCost: 1000, ParallelCost: 100}
}

// runawayBench is a real LPC kernel that never terminates — only budgets
// stop it.
func runawayBench(name string) *Benchmark {
	return &Benchmark{
		Name:    name,
		Suite:   SuiteEEMBC,
		Modeled: "injected runaway loop",
		Source:  `func main() int { while (true) { } return 0; }`,
	}
}

func TestSweepIsolatesPanics(t *testing.T) {
	good := fakeBench("good", func(cfg core.Config, _ core.RunOptions) (*core.Report, error) {
		return okReport("good", cfg), nil
	})
	bad := fakeBench("bad", func(core.Config, core.RunOptions) (*core.Report, error) {
		panic("injected worker panic")
	})
	h := NewHarness()
	sr := h.Sweep(context.Background(), []*Benchmark{good, bad}, []core.Config{{Model: core.DOALL}})
	if len(sr.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(sr.Cells))
	}
	if sr.OK() != 1 || sr.Counts[core.OutcomePanic] != 1 {
		t.Fatalf("counts = %v, want 1 ok + 1 panic", sr.Counts)
	}
	var panicked *Cell
	for i := range sr.Cells {
		if sr.Cells[i].Bench == "bad" {
			panicked = &sr.Cells[i]
		}
	}
	if panicked == nil || !errors.Is(panicked.Err, core.ErrPanic) {
		t.Fatalf("bad cell error = %+v, want ErrPanic", panicked)
	}
	var pe *core.PanicError
	if !errors.As(panicked.Err, &pe) || pe.Val != "injected worker panic" || pe.Stack == "" {
		t.Errorf("PanicError = %+v, want recovered value and stack", pe)
	}
	if sr.Err() == nil {
		t.Error("SweepResult.Err() = nil despite a failed cell")
	}
}

func TestSweepRetriesTransientOnce(t *testing.T) {
	var calls atomic.Int64
	flaky := fakeBench("flaky", func(cfg core.Config, _ core.RunOptions) (*core.Report, error) {
		if calls.Add(1) == 1 {
			panic("transient glitch")
		}
		return okReport("flaky", cfg), nil
	})
	h := NewHarnessWith(HarnessOptions{RetryTransient: true})
	sr := h.Sweep(context.Background(), []*Benchmark{flaky}, []core.Config{{Model: core.DOALL}})
	if sr.OK() != 1 {
		t.Fatalf("flaky cell should succeed on retry: %v", sr.Cells[0].Err)
	}
	if sr.Cells[0].Attempts != 2 || calls.Load() != 2 {
		t.Errorf("attempts = %d, calls = %d, want 2/2", sr.Cells[0].Attempts, calls.Load())
	}

	// Deterministic failures are not retried.
	var detCalls atomic.Int64
	det := fakeBench("det", func(core.Config, core.RunOptions) (*core.Report, error) {
		detCalls.Add(1)
		return nil, core.ErrStepLimit
	})
	sr = h.Sweep(context.Background(), []*Benchmark{det}, []core.Config{{Model: core.DOALL}})
	if detCalls.Load() != 1 {
		t.Errorf("deterministic failure retried: %d calls", detCalls.Load())
	}
	if sr.Counts[core.OutcomeStepLimit] != 1 {
		t.Errorf("counts = %v, want 1 step-limit", sr.Counts)
	}
}

func TestSweepClassifiesBudgetOutcomes(t *testing.T) {
	h := NewHarnessWith(HarnessOptions{Run: core.RunOptions{MaxSteps: 10_000}})
	runaway := runawayBench("runaway")
	faulty := &Benchmark{
		Name: "faulty", Suite: SuiteEEMBC, Modeled: "injected div-by-zero",
		Source: `func main() int { var z int = 0; return 1 / z; }`,
	}
	good := ByName("aifirf")
	if good == nil {
		t.Fatal("registry benchmark aifirf missing")
	}
	sr := h.Sweep(context.Background(), []*Benchmark{runaway, faulty, good},
		[]core.Config{{Model: core.DOALL}})
	want := map[core.Outcome]int{
		core.OutcomeStepLimit:    1,
		core.OutcomeRuntimeError: 1,
	}
	// aifirf may or may not fit in 10k steps; accept either classified
	// outcome but require the total to add up with no panics/unknowns.
	for o, n := range want {
		if sr.Counts[o] < n {
			t.Errorf("outcome %s = %d, want >= %d (counts %v)", o, sr.Counts[o], n, sr.Counts)
		}
	}
	if sr.Counts[core.OutcomePanic] != 0 || sr.Counts[core.OutcomeError] != 0 {
		t.Errorf("unexpected panic/unknown outcomes: %v", sr.Counts)
	}
	if got := len(sr.Failed()); got < 2 {
		t.Errorf("Failed() = %d cells, want >= 2", got)
	}
	if s := sr.Summary(); !strings.Contains(s, "step-limit") {
		t.Errorf("summary %q should mention step-limit", s)
	}
	// The runaway cell error is typed all the way out.
	for _, c := range sr.Cells {
		if c.Bench == "runaway" && !errors.Is(c.Err, core.ErrStepLimit) {
			t.Errorf("runaway cell error %v does not match ErrStepLimit", c.Err)
		}
	}
}

// TestReportSingleflight: concurrent Report calls for the same cell must
// execute the benchmark exactly once (the old harness raced two misses
// into duplicate b.Run work).
func TestReportSingleflight(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	slow := fakeBench("slow", func(cfg core.Config, _ core.RunOptions) (*core.Report, error) {
		calls.Add(1)
		<-gate
		return okReport("slow", cfg), nil
	})
	h := NewHarness()
	cfg := core.Config{Model: core.DOALL}
	const n = 16
	var wg sync.WaitGroup
	reports := make([]*core.Report, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := h.Report(slow, cfg)
			if err != nil {
				t.Error(err)
			}
			reports[i] = r
		}(i)
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("benchmark executed %d times under concurrent Report, want 1", calls.Load())
	}
	for i := 1; i < n; i++ {
		if reports[i] != reports[0] {
			t.Fatal("concurrent callers saw different report instances")
		}
	}
}

func TestSweepHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	b := fakeBench("b", func(cfg core.Config, _ core.RunOptions) (*core.Report, error) {
		calls.Add(1)
		return okReport("b", cfg), nil
	})
	h := NewHarness()
	sr := h.Sweep(ctx, []*Benchmark{b}, []core.Config{{Model: core.DOALL}})
	if sr.Counts[core.OutcomeCanceled] != 1 {
		t.Fatalf("counts = %v, want 1 canceled", sr.Counts)
	}
	// Cancellation must not poison the cache: a fresh sweep succeeds.
	sr = h.Sweep(context.Background(), []*Benchmark{b}, []core.Config{{Model: core.DOALL}})
	if sr.OK() != 1 {
		t.Fatalf("post-cancel sweep: %v", sr.Cells[0].Err)
	}
}

func TestSweepMidRunCancellation(t *testing.T) {
	// A real runaway kernel, canceled mid-run: the interpreter's poll must
	// stop it and classify the cell as canceled.
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	h := NewHarness()
	sr := h.Sweep(ctx, []*Benchmark{runawayBench("spin")}, []core.Config{{Model: core.DOALL}})
	c := sr.Cells[0]
	if c.Outcome != core.OutcomeCanceled {
		t.Fatalf("outcome = %v (err %v), want canceled", c.Outcome, c.Err)
	}
}

// TestSuiteGeomeanSurvivesFailedCells: a failed benchmark degrades the
// suite geomean to the survivors instead of failing the whole suite
// (the old Prefetch leaked a global first-error into every figure path).
func TestSuiteGeomeanSurvivesFailedCells(t *testing.T) {
	b := ByName("aifirf")
	if b == nil {
		t.Fatal("registry benchmark aifirf missing")
	}
	if b.runHook != nil {
		t.Fatal("registry benchmark already hooked")
	}
	b.runHook = func(core.Config, core.RunOptions) (*core.Report, error) {
		return nil, core.ErrStepLimit
	}
	defer func() { b.runHook = nil }()

	h := NewHarness()
	cfg := core.Config{Model: core.DOALL}
	v, err := h.SuiteSpeedup(SuiteEEMBC, cfg)
	if err != nil {
		t.Fatalf("SuiteSpeedup should survive one failed cell: %v", err)
	}
	if v <= 0 {
		t.Errorf("geomean = %f, want positive over survivors", v)
	}
	// The failed cell's own error stays visible to direct callers.
	if _, err := h.Report(b, cfg); !errors.Is(err, core.ErrStepLimit) {
		t.Errorf("Report(aifirf) = %v, want the cell's typed error", err)
	}
	// And the harness records it for the failure summary.
	failures := h.Failures()
	if len(failures) != 1 || failures[0].Bench != "aifirf" || failures[0].Outcome != core.OutcomeStepLimit {
		t.Errorf("Failures() = %+v, want the one step-limited cell", failures)
	}
	if s := FormatFailureSummary(failures); !strings.Contains(s, "aifirf") || !strings.Contains(s, "step-limit") {
		t.Errorf("failure summary malformed:\n%s", s)
	}
}

// TestSuiteSpeedupAllCellsFailed: when no benchmark of a suite survives,
// the caller sees an error carrying the per-cell cause.
func TestSuiteSpeedupAllCellsFailed(t *testing.T) {
	var hooked []*Benchmark
	for _, b := range BySuite(SuiteEEMBC) {
		if b.runHook != nil {
			t.Fatal("registry benchmark already hooked")
		}
		b.runHook = func(core.Config, core.RunOptions) (*core.Report, error) {
			return nil, core.ErrMemLimit
		}
		hooked = append(hooked, b)
	}
	defer func() {
		for _, b := range hooked {
			b.runHook = nil
		}
	}()
	h := NewHarness()
	_, err := h.SuiteSpeedup(SuiteEEMBC, core.Config{Model: core.DOALL})
	if !errors.Is(err, core.ErrMemLimit) {
		t.Fatalf("SuiteSpeedup error = %v, want the per-cell ErrMemLimit", err)
	}
}

// TestFigureDegradesGracefully: an injected runaway cell yields annotated
// figure output plus a failure summary — the acceptance scenario.
func TestFigureDegradesGracefully(t *testing.T) {
	b := ByName("aifirf")
	if b == nil {
		t.Fatal("registry benchmark aifirf missing")
	}
	if b.runHook != nil {
		t.Fatal("registry benchmark already hooked")
	}
	b.runHook = func(core.Config, core.RunOptions) (*core.Report, error) {
		return nil, core.ErrStepLimit
	}
	defer func() { b.runHook = nil }()

	h := NewHarness()
	sr := h.Sweep(context.Background(), BySuite(SuiteEEMBC), []core.Config{{Model: core.DOALL}})
	if sr.OK() != len(BySuite(SuiteEEMBC))-1 || sr.Counts[core.OutcomeStepLimit] != 1 {
		t.Fatalf("sweep counts = %v", sr.Counts)
	}

	st := h.suiteStatOf(SuiteEEMBC, core.Config{Model: core.DOALL}, speedupMetric)
	if st.Failed != 1 || st.OK == 0 {
		t.Fatalf("suiteStat = %+v", st)
	}
	note := st.Note()
	if !strings.Contains(note, "/") {
		t.Errorf("partial note = %q, want k/n form", note)
	}
	rows := []FigureRow{{
		Config:   core.Config{Model: core.DOALL},
		PerSuite: map[Suite]float64{SuiteEEMBC: st.Geo},
		Notes:    map[Suite]string{SuiteEEMBC: note},
	}}
	out := FormatSpeedupFigure("Figure X", []Suite{SuiteEEMBC}, rows)
	if !strings.Contains(out, "*"+note) {
		t.Errorf("figure output missing partial annotation %q:\n%s", note, out)
	}

	// All-failed cells render as n/a(<class>).
	allFailed := suiteStat{Failed: 3, Outcome: core.OutcomeStepLimit}
	if got := allFailed.Note(); got != "n/a(steps)" {
		t.Errorf("all-failed note = %q, want n/a(steps)", got)
	}
	rows[0].Notes[SuiteEEMBC] = allFailed.Note()
	out = FormatSpeedupFigure("Figure X", []Suite{SuiteEEMBC}, rows)
	if !strings.Contains(out, "n/a(steps)") {
		t.Errorf("figure output missing n/a annotation:\n%s", out)
	}
}

func TestFormatFigure4AnnotatesFailures(t *testing.T) {
	rows := []Figure4Row{
		{Name: "181.mcf", Suite: SuiteINT2000, PDOALLSpeedup: 3, HELIXSpeedup: 1.2},
		{Name: "broken", Suite: SuiteINT2000, HELIXSpeedup: 2, PDOALLOutcome: core.OutcomeTimeout},
	}
	out := FormatFigure4(rows)
	if !strings.Contains(out, "n/a(time)") {
		t.Errorf("figure 4 missing timeout annotation:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "broken") && !strings.Contains(line, "-") {
			t.Errorf("failed row should have no winner: %q", line)
		}
	}
}
