package bench

// SpecFP2006-like kernels. Compared with FP2000 these lean more on dep2
// (predictable non-computable cursors through memory) and on instrumented
// helper calls, matching the paper's note that FP2006 and EEMBC benefit
// more from dep2 than from reduc1. soplex and sphinx3 carry the
// rare-late-update pattern that prefers PDOALL over HELIX (Figure 4).

func init() {
	register(&Benchmark{
		Name:    "433.milc",
		Suite:   SuiteFP2006,
		Modeled: "lattice QCD: site loop strided by a memory-loaded offset (dep2) over small complex matrix multiplies",
		Source: `
var chkm [1]int;
const SITES = 120;
const M = 9;
var are [SITES * M]float;
var aim [SITES * M]float;
var bre [SITES * M]float;
var bim [SITES * M]float;
var cre [SITES * M]float;
var cim [SITES * M]float;
var stride [1]int;
func main() int {
	var i int;
	for (i = 0; i < SITES * M; i = i + 1) {
		var sv int = rand();
		are[i] = float(sv % 21) * 0.1 - 1.0;
		aim[i] = float((sv >> 8) % 19) * 0.1 - 0.9;
		bre[i] = float((sv >> 4) % 23) * 0.1 - 1.1;
		bim[i] = float((sv >> 12) % 17) * 0.1 - 0.8;
	}
	stride[0] = M;
	var pass int;
	for (pass = 0; pass < 4; pass = pass + 1) {
		// The site base advances by a loaded stride: non-computable,
		// trivially predictable (dep2).
		var base int = 0;
		var s int;
		for (s = 0; s < SITES; s = s + 1) {
			var r int;
			for (r = 0; r < 3; r = r + 1) {
				var c int;
				for (c = 0; c < 3; c = c + 1) {
					var sre float = 0.0;
					var sim float = 0.0;
					var k int;
					for (k = 0; k < 3; k = k + 1) {
						var ia int = base + r * 3 + k;
						var ib int = base + k * 3 + c;
						sre = sre + are[ia] * bre[ib] - aim[ia] * bim[ib];
						sim = sim + are[ia] * bim[ib] + aim[ia] * bre[ib];
					}
					cre[base + r * 3 + c] = sre;
					cim[base + r * 3 + c] = sim;
				}
			}
			base = base + stride[0];
		}
		for (i = 0; i < SITES * M; i = i + 1) { are[i] = are[i] * 0.99 + cre[i] * 0.01; }
	}
	for (i = 0; i < SITES * M; i = i + 7) {
		chkm[0] = (chkm[0] * 31 + int((cre[i] + cim[i]) * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "444.namd",
		Suite:   SuiteFP2006,
		Modeled: "short-range forces: neighbor loop with cutoff branch and sqrt calls (fn-gated), per-atom reductions",
		Source: `
var chkm [1]int;
const ATOMS = 80;
const NEIGH = 16;
var px [ATOMS]float;
var pz [ATOMS]float;
var nlist [ATOMS * NEIGH]int;
var force [ATOMS]float;
func main() int {
	var i int; var k int;
	for (i = 0; i < ATOMS; i = i + 1) {
		var sv int = rand();
		px[i] = float(sv % 64) * 0.2;
		pz[i] = float((sv >> 8) % 64) * 0.2;
	}
	for (i = 0; i < ATOMS * NEIGH; i = i + 1) { nlist[i] = (i * 53 + 11) % ATOMS; }
	var step int;
	for (step = 0; step < 8; step = step + 1) {
		for (i = 0; i < ATOMS; i = i + 1) {
			var acc float = 0.0;
			for (k = 0; k < NEIGH; k = k + 1) {
				var j int = nlist[i * NEIGH + k];
				var dx float = px[j] - px[i];
				var dz float = pz[j] - pz[i];
				var d2 float = dx * dx + dz * dz + 0.01;
				if (d2 < 40.0) {
					acc = acc + 1.0 / (d2 * sqrt(d2));
				}
			}
			force[i] = acc;
		}
		for (i = 0; i < ATOMS; i = i + 1) { px[i] = px[i] + force[i] * 0.0001; }
	}
	for (i = 0; i < ATOMS; i = i + 1) {
		chkm[0] = (chkm[0] * 31 + int(force[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "447.dealII",
		Suite:   SuiteFP2006,
		Modeled: "FEM assembly: dense per-element work with occasional shared-node scatter conflicts (infrequent memory LCDs)",
		Source: `
var chkm [1]int;
const ELEMS = 200;
const DOF = 4;
const NODES = 512;
var conn [ELEMS * DOF]int;
var global [NODES]float;
var local [16]float;
func main() int {
	var i int;
	for (i = 0; i < ELEMS * DOF; i = i + 1) {
		var sv int = rand();
		conn[i] = sv % NODES;
	}
	var pass int;
	for (pass = 0; pass < 3; pass = pass + 1) {
		var e int;
		for (e = 0; e < ELEMS; e = e + 1) {
			var a int; var b int;
			var det float = 0.0;
			for (a = 0; a < DOF; a = a + 1) {
				for (b = 0; b < DOF; b = b + 1) {
					var w float = float((e + a * 3 + b + pass) % 11) * 0.1;
					det = det + w * w;
				}
			}
			// Scatter: conflicts only when nearby elements share a node.
			for (a = 0; a < DOF; a = a + 1) {
				var n int = conn[e * DOF + a];
				global[n] = global[n] + det * 0.25;
			}
		}
	}
	for (i = 0; i < NODES; i = i + 3) {
		chkm[0] = (chkm[0] * 31 + int(global[i] * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "450.soplex",
		Suite:   SuiteFP2006,
		Modeled: "simplex pricing: independent row scans; a rare better-pivot update read early and written late (prefers PDOALL)",
		Source: `
var chkm [1]int;
const ROWS = 110;
const COLS = 50;
var tab [ROWS * COLS]float;
var pivotv [4]float;
func main() int {
	var i int; var j int;
	for (i = 0; i < ROWS * COLS; i = i + 1) {
		var sv int = rand();
		tab[i] = float(sv % 31) * 0.1 - 1.5;
	}
	var iter int;
	for (iter = 0; iter < 10; iter = iter + 1) {
		for (i = 0; i < ROWS; i = i + 1) {
			// Current best pivot read at the top.
			var best float = pivotv[0];
			var s float = 0.0;
			for (j = 0; j < COLS; j = j + 1) { s = s + tab[i * COLS + j]; }
			tab[i * COLS + (iter % COLS)] = s * 0.001;
			// Rare improvement written at the very end.
			if (s > best + 60.0) { pivotv[0] = s; }
		}
	}
	chkm[0] = int(pivotv[0] * 100.0);
	for (i = 0; i < ROWS * COLS; i = i + 9) {
		chkm[0] = (chkm[0] * 31 + int(tab[i] * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "453.povray",
		Suite:   SuiteFP2006,
		Modeled: "per-pixel ray shading: independent pixels calling instrumented shading helpers (fn2-gated)",
		Source: `
var chkm [1]int;
const W = 40;
const H = 30;
var img [W * H]float;
var depth [W * H]float;
func shade(t float, nx float) float {
	var d float = fmax(0.0, nx * 0.8 + 0.2);
	return d / (1.0 + t * t * 0.01);
}
func intersect(ox float, dx float) float {
	var b float = ox * dx;
	var disc float = b * b - ox * ox + 4.0;
	if (disc < 0.0) { return -1.0; }
	return -b + sqrt(disc);
}
func main() int {
	var y int; var x int;
	var i int;
	for (i = 0; i < W * H; i = i + 1) {
		var sv int = rand();
		depth[i] = float(sv % 5) * 0.01;
	}
	var frame int;
	for (frame = 0; frame < 3; frame = frame + 1) {
		for (y = 0; y < H; y = y + 1) {
			for (x = 0; x < W; x = x + 1) {
				var ox float = float(x - W / 2) * 0.1 + float(frame) * 0.01;
				var dx float = float(y - H / 2) * 0.07;
				var t float = intersect(ox, dx);
				if (t >= 0.0) {
					img[y * W + x] = shade(t, ox + dx);
					depth[y * W + x] = t;
				} else {
					img[y * W + x] = 0.05;
				}
			}
		}
	}
	for (i = 0; i < W * H; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int((img[i] + depth[i]) * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "470.lbm",
		Suite:   SuiteFP2006,
		Modeled: "lattice Boltzmann: collide (DOALL) plus an in-place streaming recurrence (HELIX-pipelinable)",
		Source: `
var chkm [1]int;
const CELLS = 400;
const Q = 5;
var fsrc [CELLS * Q]float;
var fdst [CELLS * Q]float;
func main() int {
	var i int;
	for (i = 0; i < CELLS * Q; i = i + 1) {
		var sv int = rand();
		fsrc[i] = float(sv % 9) * 0.111;
	}
	var t int;
	for (t = 0; t < 10; t = t + 1) {
		var c int;
		for (c = 1; c < CELLS - 1; c = c + 1) {
			var rho float = 0.0;
			var q int;
			for (q = 0; q < Q; q = q + 1) { rho = rho + fsrc[c * Q + q]; }
			var eq float = rho * 0.2;
			for (q = 0; q < Q; q = q + 1) {
				fdst[c * Q + q] = fsrc[c * Q + q] * 0.4 + eq * 0.6;
			}
		}
		// In-place streaming: cell i depends on cell i-1, written
		// first, with relaxation work after.
		for (i = 1; i < CELLS * Q; i = i + 1) {
			fsrc[i] = fdst[i] * 0.8 + fsrc[i - 1] * 0.2;
			var w float = fsrc[i];
			fdst[i] = fdst[i] * 0.9 + (w * 0.05 + w * w * 0.001) * 0.1;
		}
	}
	for (i = 0; i < CELLS * Q; i = i + 7) {
		chkm[0] = (chkm[0] * 31 + int(fsrc[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "482.sphinx3",
		Suite:   SuiteFP2006,
		Modeled: "GMM scoring: senone dot-product reductions; a rare global best-score update read early, written late (prefers PDOALL)",
		Source: `
var chkm [1]int;
const FRAMES = 30;
const SENONES = 50;
const DIM = 12;
var feat [FRAMES * DIM]float;
var mean [SENONES * DIM]float;
var best [4]float;
var scores [FRAMES]float;
func main() int {
	var i int;
	for (i = 0; i < FRAMES * DIM; i = i + 1) {
		var sv int = rand();
		feat[i] = float(sv % 25) * 0.08;
	}
	for (i = 0; i < SENONES * DIM; i = i + 1) {
		var sv int = rand();
		mean[i] = float(sv % 25) * 0.08;
	}
	var f int;
	best[0] = -1000000.0;
	for (f = 0; f < FRAMES; f = f + 1) {
		// Global pruning threshold read at the top of the frame.
		var thresh float = best[0];
		var bestlocal float = -1000000.0;
		var s int;
		for (s = 0; s < SENONES; s = s + 1) {
			var d2 float = 0.0;
			var k int;
			for (k = 0; k < DIM; k = k + 1) {
				var d float = feat[f * DIM + k] - mean[s * DIM + k];
				d2 = d2 + d * d;
			}
			bestlocal = fmax(bestlocal, 0.0 - d2);
		}
		scores[f] = bestlocal - thresh * 0.0001;
		// Rare improvement written at the very end of the frame.
		if (bestlocal > best[0]) { best[0] = bestlocal; }
	}
	chkm[0] = int(best[0] * 100.0);
	for (i = 0; i < FRAMES; i = i + 1) {
		chkm[0] = (chkm[0] * 31 + int(scores[i] * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})
}
