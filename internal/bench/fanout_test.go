package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"loopapalooza/internal/core"
)

// TestFanoutDifferentialOracle is the acceptance oracle of the run-once
// layer: for every benchmark of the suite, both fan-out strategies AND a
// recorded-trace replay must produce Reports bit-identical to per-config
// core.Run, across the DOALL/PDOALL/HELIX oracle grid.
func TestFanoutDifferentialOracle(t *testing.T) {
	benchmarks := All()
	if len(benchmarks) == 0 {
		t.Fatal("no registered benchmarks")
	}
	cfgs := oracleConfigs(testing.Short())
	for _, b := range benchmarks {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			info, err := b.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			// Reference: one isolated execution per configuration,
			// recording the trace alongside the first.
			var trace bytes.Buffer
			want := make([]*core.Report, len(cfgs))
			for i, cfg := range cfgs {
				opts := core.RunOptions{}
				if i == 0 {
					opts.Trace = &trace
				}
				if want[i], err = core.Run(info, cfg, opts); err != nil {
					t.Fatalf("%s: %v", cfg, err)
				}
			}
			check := func(kind string, got []*core.Report, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				for i := range cfgs {
					if err := core.CompareReports(want[i], got[i]); err != nil {
						t.Errorf("%s/%s: %v", kind, cfgs[i], err)
					}
				}
			}
			seq, err := core.MultiRunSequential(info, cfgs, core.RunOptions{})
			check("sequential", seq, err)
			con, err := core.MultiRunConcurrent(info, cfgs, core.RunOptions{})
			check("concurrent", con, err)
			for _, p := range []int{1, 2, runtime.NumCPU()} {
				par, err := core.MultiRunParallel(info, cfgs, core.RunOptions{Parallelism: p})
				check(fmt.Sprintf("parallel-p%d", p), par, err)
			}
			rep, err := core.ReplayTraceMulti(b.Name, info, cfgs, core.RunOptions{}, bytes.NewReader(trace.Bytes()))
			check("replay", rep, err)
		})
	}
}

// TestFanoutRaceStress feeds ≥8 concurrent engines from one execution on
// the kernels with the densest event streams. Run under -race (make race)
// this is the data-race gate for the chunked fan-out.
func TestFanoutRaceStress(t *testing.T) {
	cfgs := append(core.PaperConfigs(), core.BestPDOALL(), core.BestHELIX())
	if len(cfgs) < 8 {
		t.Fatalf("stress needs ≥8 engines, have %d", len(cfgs))
	}
	for _, name := range []string{"181.mcf", "183.equake", "aifirf"} {
		b := ByName(name)
		if b == nil {
			t.Fatalf("benchmark %s not registered", name)
		}
		info, err := b.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		reps, err := core.MultiRunConcurrent(info, cfgs, core.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(reps) != len(cfgs) {
			t.Fatalf("%s: %d reports, want %d", name, len(reps), len(cfgs))
		}
		// The pool shape with shared workers: every engine class reads the
		// same sealed chunks and span summaries from fewer goroutines.
		reps, err = core.MultiRunParallel(info, cfgs, core.RunOptions{Parallelism: 2})
		if err != nil {
			t.Fatalf("%s: parallel p=2: %v", name, err)
		}
		if len(reps) != len(cfgs) {
			t.Fatalf("%s: parallel p=2: %d reports, want %d", name, len(reps), len(cfgs))
		}
	}
}

// sweepBenches is a small cross-suite slice for harness-level tests.
func sweepBenches(t *testing.T) []*Benchmark {
	t.Helper()
	var out []*Benchmark
	for _, name := range []string{"181.mcf", "164.gzip", "aifirf", "183.equake"} {
		b := ByName(name)
		if b == nil {
			t.Fatalf("benchmark %s not registered", name)
		}
		out = append(out, b)
	}
	return out
}

// TestHarnessFanoutDedup: a sweep executes each benchmark once regardless
// of configuration count, produces cells identical to a fan-out-disabled
// harness, and a follow-up sweep only executes the genuinely new cells.
func TestHarnessFanoutDedup(t *testing.T) {
	benches := sweepBenches(t)
	cfgs := []core.Config{{Model: core.DOALL}, core.BestPDOALL(), core.BestHELIX()}

	fan := NewHarness()
	per := NewHarnessWith(HarnessOptions{DisableFanout: true})
	got := fan.Sweep(context.Background(), benches, cfgs)
	want := per.Sweep(context.Background(), benches, cfgs)
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("cell count %d vs %d", len(got.Cells), len(want.Cells))
	}
	for i := range got.Cells {
		g, w := got.Cells[i], want.Cells[i]
		if g.Bench != w.Bench || g.Config != w.Config {
			t.Fatalf("cell %d order diverged: %s/%s vs %s/%s", i, g.Bench, g.Config, w.Bench, w.Config)
		}
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("cell %d error divergence: %v vs %v", i, g.Err, w.Err)
		}
		if g.Err == nil {
			if err := core.CompareReports(w.Report, g.Report); err != nil {
				t.Errorf("cell %s/%s: %v", g.Bench, g.Config, err)
			}
		}
	}

	st := fan.Stats()
	wantStats := Stats{
		Executions: int64(len(benches)),
		Cells:      int64(len(benches) * len(cfgs)),
		Saved:      int64(len(benches) * (len(cfgs) - 1)),
	}
	if st != wantStats {
		t.Errorf("fan-out stats = %+v, want %+v", st, wantStats)
	}
	pst := per.Stats()
	if pst.Saved != 0 || pst.Executions != int64(len(benches)*len(cfgs)) {
		t.Errorf("per-config stats = %+v, want %d executions, 0 saved", pst, len(benches)*len(cfgs))
	}

	// A second sweep adding one config re-executes each benchmark once for
	// just the new cell; the cached cells are served without running.
	more := append(append([]core.Config(nil), cfgs...), core.Config{Model: core.PDOALL})
	fan.Sweep(context.Background(), benches, more)
	st2 := fan.Stats()
	if st2.Executions != st.Executions+int64(len(benches)) {
		t.Errorf("second sweep executions = %d, want %d (one per benchmark for the new config)",
			st2.Executions, st.Executions+int64(len(benches)))
	}
	if st2.Cells != st.Cells+int64(len(benches)) {
		t.Errorf("second sweep cells = %d, want %d", st2.Cells, st.Cells+int64(len(benches)))
	}
}

// TestHarnessFanoutMixedValidity: an invalid configuration in the sweep
// grid fails its own cells with the validation error without poisoning the
// valid cells that share the execution.
func TestHarnessFanoutMixedValidity(t *testing.T) {
	benches := sweepBenches(t)[:2]
	bad := core.Config{Model: core.DOALL, Dep: 42}
	cfgs := []core.Config{{Model: core.DOALL}, bad, core.BestPDOALL()}
	sr := NewHarness().Sweep(context.Background(), benches, cfgs)
	for _, c := range sr.Cells {
		if c.Config == bad {
			if c.Err == nil || c.Outcome != core.OutcomeError {
				t.Errorf("%s/%s: err = %v, want validation failure", c.Bench, c.Config, c.Err)
			}
		} else if c.Err != nil {
			t.Errorf("%s/%s: %v, want success beside the invalid cell", c.Bench, c.Config, c.Err)
		}
	}
}

// TestHarnessTraceDir: a sweep with TraceDir records one replayable trace
// per benchmark, and replaying it reproduces the sweep's own reports.
func TestHarnessTraceDir(t *testing.T) {
	dir := t.TempDir()
	benches := sweepBenches(t)[:2]
	cfgs := []core.Config{{Model: core.DOALL}, core.BestHELIX()}
	h := NewHarnessWith(HarnessOptions{TraceDir: dir})
	sr := h.Sweep(context.Background(), benches, cfgs)
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Traces != int64(len(benches)) {
		t.Fatalf("traces recorded = %d, want %d", st.Traces, len(benches))
	}
	for bi, b := range benches {
		path := filepath.Join(dir, TraceFileName(b.Name, b.Source, core.RunOptions{}))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("trace missing: %v", err)
		}
		info, err := b.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		for ci, cfg := range cfgs {
			rep, err := core.ReplayTrace(b.Name, info, cfg, core.RunOptions{}, bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s/%s: replay: %v", b.Name, cfg, err)
			}
			if err := core.CompareReports(sr.Cells[bi*len(cfgs)+ci].Report, rep); err != nil {
				t.Errorf("%s/%s: %v", b.Name, cfg, err)
			}
		}
	}
}
