package bench

// EEMBC-like kernels: small, regular embedded loops. Most become massively
// parallel once reductions, predictable cursors, and math calls are admitted
// (the suite posts the largest numeric gains in the paper); iirflt, pntrch,
// and canrdr carry genuinely sequential recurrences that keep the suite
// honest. Inputs arrive through rand() — non-re-entrant library calls that
// only fn3 parallelizes — and a sampled mixing checksum closes each kernel.

func init() {
	register(&Benchmark{
		Name:    "aifirf",
		Suite:   SuiteEEMBC,
		Modeled: "FIR filter: outer loop DOALL over samples, inner dot-product reduction (reduc1)",
		Source: `
var chkm [1]int;
const TAPS = 24;
const N = 900;
var coef [TAPS]float;
var in [N + TAPS]float;
var out [N]float;
func main() int {
	var i int;
	for (i = 0; i < TAPS; i = i + 1) { coef[i] = float(i % 7) * 0.125 - 0.375; }
	for (i = 0; i < N + TAPS; i = i + 1) {
		var sv int = rand();
		in[i] = float(sv % 101) * 0.01;
	}
	var ch int;
	for (ch = 0; ch < 3; ch = ch + 1) {
		var s int;
		for (s = 0; s < N; s = s + 1) {
			var acc float = 0.0;
			var t int;
			for (t = 0; t < TAPS; t = t + 1) {
				acc = acc + coef[t] * in[s + t];
			}
			out[s] = acc + out[s] * 0.1;
		}
	}
	for (i = 0; i < N; i = i + 7) {
		chkm[0] = (chkm[0] * 31 + int(out[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "autcor",
		Suite:   SuiteEEMBC,
		Modeled: "autocorrelation: lag loop of dot-product reductions (reduc1)",
		Source: `
var chkm [1]int;
const N = 900;
const LAGS = 20;
var x [N]float;
var r [LAGS]float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		x[i] = float(sv % 64) * 0.0625 - 0.5;
	}
	var lag int;
	for (lag = 0; lag < LAGS; lag = lag + 1) {
		var acc float = 0.0;
		var j int;
		for (j = 0; j < N - lag; j = j + 1) {
			acc = acc + x[j] * x[j + lag];
		}
		r[lag] = acc;
	}
	for (i = 0; i < LAGS; i = i + 1) {
		chkm[0] = (chkm[0] * 31 + int(r[i])) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "matrix",
		Suite:   SuiteEEMBC,
		Modeled: "dense matrix multiply: triple nest, inner reduction, computable IVs",
		Source: `
var chkm [1]int;
const N = 18;
var a [N * N]float;
var b [N * N]float;
var c [N * N]float;
func main() int {
	var i int; var j int; var k int;
	for (i = 0; i < N * N; i = i + 1) {
		var sv int = rand();
		a[i] = float(sv % 23) * 0.1;
		b[i] = float((sv >> 8) % 19) * 0.1;
	}
	var pass int;
	for (pass = 0; pass < 3; pass = pass + 1) {
		for (i = 0; i < N; i = i + 1) {
			for (j = 0; j < N; j = j + 1) {
				var s float = 0.0;
				for (k = 0; k < N; k = k + 1) {
					s = s + a[i * N + k] * b[k * N + j];
				}
				c[i * N + j] = s;
			}
		}
		for (i = 0; i < N * N; i = i + 1) { a[i] = a[i] * 0.9 + c[i] * 0.001; }
	}
	for (i = 0; i < N * N; i = i + 5) {
		chkm[0] = (chkm[0] * 31 + int(c[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "idctrn",
		Suite:   SuiteEEMBC,
		Modeled: "8x8 inverse DCT over independent blocks: DOALL across blocks, cos() calls gate fn0",
		Source: `
var chkm [1]int;
const BLOCKS = 36;
const B = 64;
var img [BLOCKS * B]float;
var tmp [BLOCKS * B]float;
func main() int {
	var i int;
	for (i = 0; i < BLOCKS * B; i = i + 1) {
		var sv int = rand();
		img[i] = float(sv % 255) - 128.0;
	}
	var blk int;
	for (blk = 0; blk < BLOCKS; blk = blk + 1) {
		var r int;
		for (r = 0; r < 8; r = r + 1) {
			var cidx int;
			for (cidx = 0; cidx < 8; cidx = cidx + 1) {
				var acc float = 0.0;
				var u int;
				for (u = 0; u < 8; u = u + 1) {
					acc = acc + img[blk * B + r * 8 + u] * cos(float(u * cidx) * 0.19635);
				}
				tmp[blk * B + r * 8 + cidx] = acc * 0.25;
			}
		}
	}
	for (i = 0; i < BLOCKS * B; i = i + 9) {
		chkm[0] = (chkm[0] * 31 + int(tmp[i])) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "iirflt",
		Suite:   SuiteEEMBC,
		Modeled: "IIR biquad: y[n] depends on y[n-1], y[n-2] — a frequent float register LCD produced mid-iteration",
		Source: `
var chkm [1]int;
const N = 3000;
var x [N]float;
var y [N]float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		x[i] = float(sv % 32) * 0.03125 - 0.5;
	}
	var y1 float = 0.0;
	var y2 float = 0.0;
	for (i = 0; i < N; i = i + 1) {
		var v float = x[i] + 1.6 * y1 - 0.64 * y2;
		y2 = y1;
		y1 = v;
		// Post-processing of the output sample (independent tail).
		var w float = v * 0.5;
		var w2 float = w * w;
		var w4 float = w2 * w2;
		y[i] = w + w2 * 0.01 - w2 * w * 0.001 + w4 * 0.0001 - w4 * w * 0.00001;
	}
	for (i = 0; i < N; i = i + 7) {
		chkm[0] = (chkm[0] * 31 + int(y[i] * 100.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "pntrch",
		Suite:   SuiteEEMBC,
		Modeled: "pointer chase through a linked ring: unpredictable register LCD produced early, small search tail",
		Source: `
var chkm [1]int;
const N = 1021;
var nxt [N]int;
var val [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		nxt[i] = sv % N;
		val[i] = (sv >> 8) % 29;
	}
	var p int = 0;
	var found int = 0;
	for (i = 0; i < 3000; i = i + 1) {
		// Next pointer and match counter produced at the top.
		p = (nxt[p] + i) % N;
		var v int = val[p];
		if (v == 13) { found = found + 1; }
		// Independent: score the visited record.
		var score int = v;
		var k int;
		for (k = 0; k < 8; k = k + 1) { score = (score * 3 + k) % 211; }
		val[p] = score;
	}
	chkm[0] = found * 1000 + p;
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "tblook",
		Suite:   SuiteEEMBC,
		Modeled: "table lookup with interpolation: cursor strided by a memory-loaded step (dep2), independent interpolation",
		Source: `
var chkm [1]int;
const T = 256;
const N = 1800;
var table [T]float;
var out [N]float;
var step [1]int;
func main() int {
	var i int;
	for (i = 0; i < T; i = i + 1) {
		var sv int = rand();
		table[i] = float(sv % 100) * 0.5;
	}
	step[0] = 97;
	// The key cursor advances by a loaded stride: non-computable,
	// predictable (dep2 unlocks this loop).
	var key int = 13;
	for (i = 0; i < N; i = i + 1) {
		key = (key + step[0]) % (T - 1);
		var frac float = float((i * 31) % 100) * 0.01;
		out[i] = table[key] + (table[key + 1] - table[key]) * frac;
	}
	for (i = 0; i < N; i = i + 7) {
		chkm[0] = (chkm[0] * 31 + int(out[i] * 10.0)) % 65521;
	}
	return chkm[0];
}`,
	})

	register(&Benchmark{
		Name:    "canrdr",
		Suite:   SuiteEEMBC,
		Modeled: "CAN frame decoder: frame state machine advanced early; per-byte filter work independent",
		Source: `
var chkm [1]int;
const N = 2600;
var stream [N]int;
var counts [16]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		var sv int = rand();
		stream[i] = sv % 256;
	}
	var state int = 0;
	var frames int = 0;
	for (i = 0; i < N; i = i + 1) {
		var byteval int = stream[i];
		// Frame state advanced at the top of the iteration.
		state = ((state << 3) ^ byteval) & 1023;
		if ((state & 7) == 3) {
			frames = frames + 1;
			counts[byteval % 16] = counts[byteval % 16] + 1;
			state = 0;
		}
		// Independent: acceptance filter arithmetic for this byte.
		var f int = byteval;
		var k int;
		for (k = 0; k < 12; k = k + 1) { f = ((f << 1) ^ (f >> 3) ^ k) & 1023; }
		stream[i] = f;
	}
	chkm[0] = frames + state;
	for (i = 0; i < 16; i = i + 1) {
		chkm[0] = (chkm[0] * 31 + counts[i]) % 65521;
	}
	return chkm[0];
}`,
	})
}
