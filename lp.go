// Package loopapalooza is a from-scratch Go reproduction of
// "Loopapalooza: Investigating Limits of Loop-Level Parallelism with a
// Compiler-Driven Approach" (Zaidi, Iordanou, Luján, Gabrielli — ISPASS
// 2021).
//
// It provides the paper's complete pipeline as a library:
//
//   - an LPC (mini-C) front end and a typed SSA IR standing in for LLVM;
//   - the compile-time component: loop canonicalization, mem2reg, scalar
//     evolution, reduction recognition, and purity analysis;
//   - the run-time component: an instrumenting interpreter driving the
//     limit-study engine with the DOALL / Partial-DOALL / HELIX execution
//     models, Table II configuration flags, and the four value predictors;
//   - the synthetic SPEC/EEMBC-like benchmark suites and the harness that
//     regenerates Figures 2-5 of the paper.
//
// Quick start:
//
//	report, err := loopapalooza.Study("prog", src,
//		loopapalooza.Config{Model: loopapalooza.HELIX, Reduc: 1, Dep: 1, Fn: 2})
//	fmt.Printf("limit speedup: %.2fx\n", report.Speedup())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package loopapalooza

import (
	"errors"
	"io"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/bench"
	"loopapalooza/internal/cluster"
	"loopapalooza/internal/core"
)

// Config is a limit-study configuration (the paper's Table II flags plus
// the execution model).
type Config = core.Config

// Model selects the parallel execution model.
type Model = core.Model

// The three execution models of the paper (§II-C).
const (
	DOALL  = core.DOALL
	PDOALL = core.PDOALL
	HELIX  = core.HELIX
)

// Report is the outcome of one limit-study run: limit speedup, dynamic
// coverage, per-loop classification, and the Table I dependency census.
type Report = core.Report

// LoopReport summarizes one static loop under a configuration.
type LoopReport = core.LoopReport

// ModuleInfo is the reusable compile-time analysis of one program.
type ModuleInfo = analysis.ModuleInfo

// Benchmark is one kernel of the synthetic SPEC/EEMBC-like suites.
type Benchmark = bench.Benchmark

// Suite identifies a benchmark suite.
type Suite = bench.Suite

// ParseConfig parses "reduc1-dep1-fn2 HELIX"-style configuration strings.
func ParseConfig(s string) (Config, error) { return core.ParseConfig(s) }

// PaperConfigs returns the fourteen configurations of Figures 2 and 3, in
// presentation order.
func PaperConfigs() []Config { return core.PaperConfigs() }

// BestPDOALL returns the best realistic Partial-DOALL configuration
// (reduc1-dep2-fn2), per Figure 4.
func BestPDOALL() Config { return core.BestPDOALL() }

// BestHELIX returns the best realistic HELIX configuration
// (reduc1-dep1-fn2), per Figure 4.
func BestHELIX() Config { return core.BestHELIX() }

// Analyze compiles LPC source and runs the full compile-time component
// (canonicalization, SSA promotion, SCEV, reductions, purity). The result
// can be reused across configurations.
func Analyze(name, src string) (*ModuleInfo, error) {
	return core.AnalyzeSource(name, src)
}

// RunOptions carries the resource budgets and cancellation context of a
// run: MaxSteps (dynamic instruction budget), Timeout / Ctx (wall-clock
// and cooperative cancellation), MaxHeapCells (simulated heap budget),
// and Tracker (dependence-tracking implementation).
type RunOptions = core.RunOptions

// TrackerKind selects the dependence-tracking implementation used by the
// limit-study engine.
type TrackerKind = core.TrackerKind

// The dependence trackers. TrackerShadow — flat generation-stamped shadow
// memory — is the production default (and the zero value). TrackerLegacyMap
// is the original per-instance hash-map tracker, kept as a differential
// oracle: both produce bit-identical Reports.
const (
	TrackerShadow    = core.TrackerShadow
	TrackerLegacyMap = core.TrackerLegacyMap
)

// EngineKind selects the execution engine that produces the
// instrumentation event stream.
type EngineKind = core.EngineKind

// The execution engines. EngineBytecode — a register-based bytecode VM
// with type-specialized opcodes and fused superinstructions — is the
// production default (and the zero value). EngineTreewalk is the original
// per-instruction IR walker, kept as a differential oracle: both produce
// bit-identical Reports.
const (
	EngineBytecode = core.EngineBytecode
	EngineTreewalk = core.EngineTreewalk
)

// ParseEngineKind maps a CLI flag value ("bytecode", "treewalk") to an
// EngineKind.
func ParseEngineKind(s string) (EngineKind, error) { return core.ParseEngineKind(s) }

// Outcome classifies a run failure into the taxonomy (see Classify). It
// serializes to stable slugs ("ok", "step-limit", ...) via
// encoding.TextMarshaler, and Outcome.ExitCode gives the process exit
// code contract shared by cmd/lpa and the lpd service (0, 3-7).
type Outcome = core.Outcome

// ParseOutcome is the inverse of Outcome.String: it parses the stable
// slug form used on the wire and in logs.
func ParseOutcome(s string) (Outcome, error) { return core.ParseOutcome(s) }

// The taxonomy outcomes.
const (
	OutcomeOK           = core.OutcomeOK
	OutcomeStepLimit    = core.OutcomeStepLimit
	OutcomeMemLimit     = core.OutcomeMemLimit
	OutcomeTimeout      = core.OutcomeTimeout
	OutcomeCanceled     = core.OutcomeCanceled
	OutcomePanic        = core.OutcomePanic
	OutcomeRuntimeError = core.OutcomeRuntimeError
	OutcomeError        = core.OutcomeError
)

// The failure taxonomy. Every error returned by Study/StudyAnalyzed
// matches exactly one sentinel under errors.Is; a zero RunOptions imposes
// only the default step and heap budgets.
var (
	// ErrStepLimit: the dynamic instruction budget was exhausted.
	ErrStepLimit = core.ErrStepLimit
	// ErrMemLimit: a memory budget tripped (heap cells or stack words).
	ErrMemLimit = core.ErrMemLimit
	// ErrDeadline: the wall-clock deadline or timeout passed mid-run
	// (also matches context.DeadlineExceeded).
	ErrDeadline = core.ErrDeadline
	// ErrCanceled: the run's context was canceled mid-run (also matches
	// context.Canceled).
	ErrCanceled = core.ErrCanceled
	// ErrRuntime: the guest program faulted (division by zero, null or
	// unmapped access, ...).
	ErrRuntime = core.ErrRuntime
)

// Classify maps a run error to its taxonomy outcome (OutcomeOK for nil).
func Classify(err error) Outcome { return core.Classify(err) }

// IsBudget reports whether err is a resource-budget trip (step, memory,
// or deadline) rather than a program fault or cancellation.
func IsBudget(err error) bool {
	return errors.Is(err, ErrStepLimit) || errors.Is(err, ErrMemLimit) ||
		errors.Is(err, ErrDeadline)
}

// Study compiles source and runs the limit study under one configuration.
func Study(name, src string, cfg Config) (*Report, error) {
	return core.RunSource(name, src, cfg, core.RunOptions{})
}

// StudyWith is Study under explicit resource budgets and cancellation.
func StudyWith(name, src string, cfg Config, opts RunOptions) (*Report, error) {
	return core.RunSource(name, src, cfg, opts)
}

// StudyAnalyzed runs the limit study on a previously analyzed module.
func StudyAnalyzed(info *ModuleInfo, cfg Config) (*Report, error) {
	return core.Run(info, cfg, core.RunOptions{})
}

// StudyAnalyzedWith is StudyAnalyzed under explicit resource budgets and
// cancellation.
func StudyAnalyzedWith(info *ModuleInfo, cfg Config, opts RunOptions) (*Report, error) {
	return core.Run(info, cfg, opts)
}

// StudyMany executes a previously analyzed module ONCE and evaluates
// every configuration against the shared instrumentation event stream,
// returning one report per configuration. The reports are bit-identical
// to calling StudyAnalyzedWith once per configuration; only the
// interpretation cost is paid once. Set opts.Trace to also record the
// event stream for later replay (see ReplayTrace).
func StudyMany(info *ModuleInfo, cfgs []Config, opts RunOptions) ([]*Report, error) {
	return core.MultiRun(info, cfgs, opts)
}

// ReplayTrace evaluates one configuration against an event trace
// recorded by a prior run (RunOptions.Trace) of the same analyzed
// module, without re-executing the program. Resource budgets were
// enforced when the trace was recorded.
func ReplayTrace(name string, info *ModuleInfo, cfg Config, r io.Reader) (*Report, error) {
	return core.ReplayTrace(name, info, cfg, core.RunOptions{}, r)
}

// Benchmarks returns the registered SPEC/EEMBC-like kernels.
func Benchmarks() []*Benchmark { return bench.All() }

// BenchmarkByName returns one registered kernel, or nil.
func BenchmarkByName(name string) *Benchmark { return bench.ByName(name) }

// The cluster facade: a fault-tolerant coordinator + worker fleet for
// distributed sweeps. A Coordinator owns per-tenant job queues, leases,
// retries, and per-worker circuit breakers; ClusterWorkers claim batches
// of sweep cells (in-process, or remotely via NewClusterClient), execute
// them on a local harness, and commit verified per-cell reports. See
// internal/cluster for the full semantics.

// Coordinator owns cluster jobs, queues, leases, and breakers.
type Coordinator = cluster.Coordinator

// CoordinatorOptions configures a Coordinator (zero values = defaults).
type CoordinatorOptions = cluster.CoordinatorOptions

// ClusterWorker claims and executes sweep cells against a coordinator.
type ClusterWorker = cluster.Worker

// ClusterWorkerOptions configures a ClusterWorker.
type ClusterWorkerOptions = cluster.WorkerOptions

// Coordination is the worker-facing coordinator surface, implemented
// in-process by *Coordinator and over HTTP by NewClusterClient.
type Coordination = cluster.Coordination

// JobStatus reports one cluster job: per-cell states, outcome counts,
// and the aggregate summary line.
type JobStatus = cluster.JobStatus

// NewCoordinator returns a running coordinator; call its Close to stop
// the lease janitor.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	return cluster.NewCoordinator(opts)
}

// OpenCoordinator returns a running durable coordinator: every state
// transition is journaled to a write-ahead log under opts.DataDir, and
// opening over an existing log recovers jobs, committed reports, queue
// order, and live leases from the last synced state — a crashed
// coordinator resumes where it stopped, rejecting stale commits exactly
// as the original would have. An empty DataDir is NewCoordinator.
func OpenCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	return cluster.OpenCoordinator(opts)
}

// NewClusterWorker builds a worker against a Coordination surface.
func NewClusterWorker(opts ClusterWorkerOptions) (*ClusterWorker, error) {
	return cluster.NewWorker(opts)
}

// NewClusterClient returns the HTTP Coordination client for the
// coordinator at base (e.g. "http://coordinator:8080").
func NewClusterClient(base string) Coordination {
	return cluster.NewClient(base, nil)
}
