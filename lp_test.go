package loopapalooza_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"
	"time"

	lp "loopapalooza"
)

const apiProg = `
const N = 200;
var tab [N]int;
func main() int {
	var s int = 0;
	var i int;
	for (i = 0; i < N; i = i + 1) { tab[i] = i * 3; }
	for (i = 0; i < N; i = i + 1) { s = s + tab[i]; }
	return s;
}`

func TestPublicAPIStudy(t *testing.T) {
	r, err := lp.Study("api", apiProg, lp.Config{Model: lp.DOALL, Reduc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup() < 10 {
		t.Errorf("speedup = %.2f, want large for DOALL-able program", r.Speedup())
	}
	if !strings.Contains(r.String(), "DOALL") {
		t.Error("report does not mention the model")
	}
}

func TestPublicAPIAnalyzeReuse(t *testing.T) {
	info, err := lp.Analyze("api", apiProg)
	if err != nil {
		t.Fatal(err)
	}
	var speeds []float64
	for _, cfg := range lp.PaperConfigs() {
		r, err := lp.StudyAnalyzed(info, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		speeds = append(speeds, r.Speedup())
	}
	if len(speeds) != 14 {
		t.Fatalf("paper configs = %d, want 14", len(speeds))
	}
	// Best HELIX must not lose to the most restrictive DOALL.
	if speeds[len(speeds)-1] < speeds[0] {
		t.Errorf("best HELIX (%.2f) below minimum DOALL (%.2f)", speeds[len(speeds)-1], speeds[0])
	}
}

func TestPublicAPIStudyManyAndReplay(t *testing.T) {
	info, err := lp.Analyze("api", apiProg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := lp.PaperConfigs()
	var trace bytes.Buffer
	reps, err := lp.StudyMany(info, cfgs, lp.RunOptions{Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(cfgs) {
		t.Fatalf("reports = %d, want %d", len(reps), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := lp.StudyAnalyzed(info, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if reps[i].Speedup() != want.Speedup() || reps[i].SerialCost != want.SerialCost {
			t.Errorf("%s: StudyMany diverged from StudyAnalyzed", cfg)
		}
		got, err := lp.ReplayTrace("api", info, cfg, bytes.NewReader(trace.Bytes()))
		if err != nil {
			t.Fatalf("%s: replay: %v", cfg, err)
		}
		if got.Speedup() != want.Speedup() || got.ParallelCost != want.ParallelCost {
			t.Errorf("%s: ReplayTrace diverged from StudyAnalyzed", cfg)
		}
	}
}

func TestPublicAPIParseConfig(t *testing.T) {
	cfg, err := lp.ParseConfig("reduc1-dep1-fn2 HELIX")
	if err != nil {
		t.Fatal(err)
	}
	if cfg != lp.BestHELIX() {
		t.Errorf("parsed %v, want BestHELIX", cfg)
	}
	if _, err := lp.ParseConfig("reduc1-dep1-fn2 DOALL"); err == nil {
		t.Error("dep1 DOALL should not validate")
	}
}

func TestPublicAPIBenchmarkRegistry(t *testing.T) {
	all := lp.Benchmarks()
	if len(all) < 40 {
		t.Fatalf("registry has %d kernels, want >= 40", len(all))
	}
	mcf := lp.BenchmarkByName("181.mcf")
	if mcf == nil {
		t.Fatal("181.mcf missing")
	}
	r, err := mcf.Run(lp.BestPDOALL())
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup() < 1 {
		t.Errorf("speedup = %.2f", r.Speedup())
	}
}

func TestPublicAPIBadProgram(t *testing.T) {
	if _, err := lp.Study("bad", "func main() int { return x; }", lp.Config{}); err == nil {
		t.Error("undefined variable should fail")
	}
	if _, err := lp.Analyze("bad", "not a program"); err == nil {
		t.Error("syntax error should fail")
	}
}

// TestStudyInvariants is a property check over the whole pipeline: for any
// (small) trip count and any valid configuration, the parallel cost never
// exceeds the serial cost, coverage stays within [0,1], and runs are
// deterministic.
func TestStudyInvariants(t *testing.T) {
	prog := `
const N = 64;
var a [N]int;
var hot [4]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) { a[i] = (i * 7 + 3) % 31; }
	for (i = 1; i < N; i = i + 1) {
		hot[0] = hot[0] + a[i];
		a[i] = a[i] + a[i-1] % 5;
	}
	return a[N-1] + hot[0];
}`
	info, err := lp.Analyze("inv", prog)
	if err != nil {
		t.Fatal(err)
	}
	f := func(model, reduc, dep, fn uint8) bool {
		cfg := lp.Config{
			Model: lp.Model(model % 3),
			Reduc: int(reduc % 2),
			Dep:   int(dep % 4),
			Fn:    int(fn % 4),
		}
		if cfg.Validate() != nil {
			return true // skip invalid combinations
		}
		r1, err := lp.StudyAnalyzed(info, cfg)
		if err != nil {
			return false
		}
		r2, err := lp.StudyAnalyzed(info, cfg)
		if err != nil {
			return false
		}
		return r1.ParallelCost <= r1.SerialCost &&
			r1.ParallelCost > 0 &&
			r1.Coverage() >= 0 && r1.Coverage() <= 1 &&
			r1.SerialCost == r2.SerialCost &&
			r1.ParallelCost == r2.ParallelCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPublicAPICluster(t *testing.T) {
	coord := lp.NewCoordinator(lp.CoordinatorOptions{Seed: 1})
	defer coord.Close()
	w, err := lp.NewClusterWorker(lp.ClusterWorkerOptions{ID: "facade", Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	defer func() { cancel(); <-done }()

	b := lp.Benchmarks()[0]
	id, err := coord.Submit("", []*lp.Benchmark{b}, []lp.Config{lp.BestHELIX()}, true)
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if err := coord.Wait(waitCtx, id); err != nil {
		t.Fatal(err)
	}
	st, err := coord.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	var _ *lp.JobStatus = st
	if st.Counts[lp.OutcomeOK] != 1 || st.Cells[0].Report == nil {
		t.Fatalf("cluster job status %+v, want 1 ok with report", st)
	}

	// The committed report matches a direct single-process study.
	direct, err := b.Run(lp.BestHELIX())
	if err != nil {
		t.Fatal(err)
	}
	got := coord.Report(id, b.Name, lp.BestHELIX())
	if got == nil || got.SerialCost != direct.SerialCost || got.ParallelCost != direct.ParallelCost {
		t.Fatalf("cluster report %+v differs from direct run %+v", got, direct)
	}
}
