// Benchmarks that regenerate the paper's evaluation. One bench per table
// and figure (see DESIGN.md §4 for the index):
//
//	go test -bench=. -benchmem
//
// The figure benches report the suite geometric means as custom metrics
// (e.g. "cint2000_best_helix_x"), so a bench run reproduces the paper's
// headline numbers alongside the harness's own cost.
package loopapalooza_test

import (
	"fmt"
	"testing"

	lp "loopapalooza"
	"loopapalooza/internal/analysis"
	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/lang"
	"loopapalooza/internal/predict"
)

// BenchmarkTableI measures the compile-time dependency categorization
// (Table I): front end + canonicalization + SCEV + reductions + purity over
// the whole benchmark registry.
func BenchmarkTableI(b *testing.B) {
	srcs := map[string]string{}
	for _, bm := range bench.All() {
		srcs[bm.Name] = bm.Source
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loops := 0
		for name, src := range srcs {
			m, err := lang.Compile(name, src)
			if err != nil {
				b.Fatal(err)
			}
			info, err := analysis.AnalyzeModule(m)
			if err != nil {
				b.Fatal(err)
			}
			loops += len(info.Loops)
		}
		if loops == 0 {
			b.Fatal("no loops analyzed")
		}
	}
}

// BenchmarkTableII measures configuration validation and parsing across the
// whole flag space (Table II).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range core.PaperConfigs() {
			rt, err := core.ParseConfig(cfg.String())
			if err != nil || rt != cfg {
				b.Fatalf("round trip failed for %s", cfg)
			}
		}
	}
}

// BenchmarkFigure1 measures the execution-model cost engines on a synthetic
// event stream (the didactic loop of Figure 1, scaled up).
func BenchmarkFigure1(b *testing.B) {
	src := `
const N = 200;
var a [N]int;
func main() int {
	var i int;
	a[0] = 1;
	for (i = 1; i < N; i = i + 1) { a[i] = a[i-1] + i; }
	var s int = 0;
	for (i = 0; i < N; i = i + 1) { s = s + a[i]; }
	return s;
}`
	info, err := lp.Analyze("figure1", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, model := range []lp.Model{lp.DOALL, lp.PDOALL, lp.HELIX} {
			if _, err := lp.StudyAnalyzed(info, lp.Config{Model: model, Reduc: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func reportSuiteMetrics(b *testing.B, h *bench.Harness, suites []bench.Suite, rows []bench.FigureRow) {
	for _, row := range rows {
		// Only surface the headline configurations as metrics.
		name := ""
		switch row.Config {
		case core.BestHELIX():
			name = "best_helix"
		case core.BestPDOALL():
			name = "best_pdoall"
		case (core.Config{Model: core.DOALL}):
			name = "doall"
		}
		if name == "" {
			continue
		}
		for _, s := range suites {
			b.ReportMetric(row.PerSuite[s], fmt.Sprintf("%s_%s_x", s, name))
		}
	}
}

// BenchmarkFigure2 regenerates the non-numeric speedup figure (SpecINT-like
// suites under all fourteen configurations).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness()
		rows, err := h.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSuiteMetrics(b, h, bench.NonNumericSuites(), rows)
		}
	}
}

// BenchmarkFigure3 regenerates the numeric speedup figure (EEMBC/SpecFP-like
// suites under all fourteen configurations).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness()
		rows, err := h.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSuiteMetrics(b, h, bench.NumericSuites(), rows)
		}
	}
}

// BenchmarkFigure4 regenerates the per-benchmark best-PDOALL vs best-HELIX
// comparison and reports how many benchmarks each model wins.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness()
		rows, err := h.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pd := 0
			for _, r := range rows {
				if r.PDOALLSpeedup > r.HELIXSpeedup {
					pd++
				}
			}
			b.ReportMetric(float64(pd), "pdoall_wins")
			b.ReportMetric(float64(len(rows)-pd), "helix_wins")
		}
	}
}

// BenchmarkFigure5 regenerates the dynamic-coverage figure and reports the
// HELIX-dep1 coverage per suite.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness()
		rows, err := h.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1] // HELIX reduc0-dep1-fn2
			for _, s := range bench.AllSuites() {
				b.ReportMetric(last.PerSuite[s], fmt.Sprintf("%s_cov_pct", s))
			}
		}
	}
}

// BenchmarkInterpreter measures raw uninstrumented execution throughput.
func BenchmarkInterpreter(b *testing.B) {
	bm := bench.ByName("456.hmmer")
	info, err := bm.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New(info, interp.Config{})
		res, err := in.Run("main")
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "ir_instrs/run")
}

// BenchmarkEngineOverhead measures the limit-study engine's cost on top of
// plain interpretation.
func BenchmarkEngineOverhead(b *testing.B) {
	bm := bench.ByName("456.hmmer")
	info, err := bm.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.BestHELIX()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(info, cfg, core.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictors measures hybrid value-predictor throughput.
func BenchmarkPredictors(b *testing.B) {
	h := predict.NewHybrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) * 3)
	}
	_ = h.HitRate()
}

// BenchmarkAblationHelixDelta compares the paper's literal HELIX delta
// (p−c) against the gap-amortized variant ((p−c)/(j−i)) on the Figure 4
// sweep, reporting how many PDOALL winners each formula leaves. The
// amortized variant is strictly more optimistic for HELIX and erases the
// paper's called-out PDOALL winners (EXPERIMENTS.md, deviation 4).
func BenchmarkAblationHelixDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, amortize := range []bool{false, true} {
			hx := core.BestHELIX()
			hx.AmortizeHelixDelta = amortize
			pdWins := 0
			for _, bm := range bench.All() {
				if bm.Suite == bench.SuiteEEMBC {
					continue
				}
				rp, err := bm.Run(core.BestPDOALL())
				if err != nil {
					b.Fatal(err)
				}
				rh, err := bm.Run(hx)
				if err != nil {
					b.Fatal(err)
				}
				if rp.Speedup() > rh.Speedup() {
					pdWins++
				}
			}
			if i == 0 {
				name := "pdoall_wins_paper_delta"
				if amortize {
					name = "pdoall_wins_amortized"
				}
				b.ReportMetric(float64(pdWins), name)
			}
		}
	}
}
