// Command benchjson converts `go test -bench` output into a
// machine-readable JSON summary (BENCH_PR10.json). It parses every
// benchmark line, keeps all reported metrics (ns/op, B/op, allocs/op,
// and custom metrics like instrs/sec), and derives four ratio tables:
//
//   - fanout_vs_perconfig: for each benchmark with /fanout and
//     /per-config sub-benchmarks, the per-config÷fanout time ratio —
//     the sweep wall-clock won by interpreting each program once and
//     fanning the event stream out to every configuration's engine.
//   - shadow_vs_legacy: for each benchmark with /shadow and /legacy-map
//     sub-benchmarks, the legacy÷shadow time ratio and the per-op bytes
//     saved — the cost of the differential oracle's map tracker relative
//     to the production shadow memory.
//   - bytecode_vs_treewalk: for each benchmark with /bytecode and
//     /treewalk sub-benchmarks, the treewalk÷bytecode time ratio — the
//     dispatch cost the register-based bytecode VM compiles away
//     relative to the tree-walking oracle.
//   - batched_vs_perevent: for each benchmark with /batched and
//     /per-event sub-benchmarks, the per-event÷batched time ratio — the
//     dispatch amortization won by feeding engines whole sealed event
//     chunks (one tracker call per memory span) instead of one hook
//     call per event.
//   - parallel_vs_serial: for each benchmark with /parallel and /serial
//     sub-benchmarks, the serial÷parallel time ratio — the multi-core
//     scaling won by sharding engine classes across the class-affinity
//     worker pool (Parallelism=NumCPU) against the single-goroutine
//     chunked replay (Parallelism=1).
//   - seed_vs_current: current numbers against baselines measured at the
//     pre-shadow-memory seed commit with identical access patterns.
//
// It also extracts BenchmarkBytecodeLowering's custom "op/<mnemonic>"
// metrics into a bytecode_lowering table: the suite-wide static opcode
// mix and superinstruction coverage of the bytecode compiler.
//
// With -compare, benchjson additionally loads a previous BENCH_*.json and
// exits non-zero when any gated series regressed past -tolerance percent
// against it. Per-op cost series (ns/op, sec/run, B/op, allocs/op) are
// gated only when both the baseline and the current run measured more
// than one iteration — a -benchtime=1x smoke folds one-time warm-up into
// its single op, which pollutes allocation counts as badly as timings.
// Deterministic work-census metrics (instruction counts, opcode mix) are
// exact at any iteration count and always gated, so the 1x CI smoke still
// catches the compiler or interpreter silently emitting more work while a
// full `make bench` run gates costs too.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -o BENCH_PR10.json
//	go run ./cmd/benchjson -o BENCH_PR10.json bench.out
//	go test -bench=. -benchtime=1x -benchmem ./... | go run ./cmd/benchjson -compare BENCH_PR10.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string             `json:"name"` // GOMAXPROCS suffix stripped
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op": 16.9
}

// Ratio compares two measurements of the same quantity. Speedup is
// baseline/current (>1 means current is better); it is omitted and
// Eliminated set when the current cost dropped to exactly zero, where
// the ratio is undefined.
type Ratio struct {
	Baseline   float64  `json:"baseline"`
	Current    float64  `json:"current"`
	Speedup    *float64 `json:"speedup,omitempty"`
	Eliminated bool     `json:"eliminated,omitempty"`
}

// seedBaseline is a measurement taken at the seed commit (d237949),
// before the shadow-memory tracker and the zero-allocation interpreter
// hot path, using benchmarks with the same access patterns as the
// current suite. Only metrics that were actually measured are present.
type seedBaseline struct {
	current string // name of the current benchmark it compares against
	metrics map[string]float64
}

// seedBaselines: measured on the same machine as the current numbers in
// this file's output. The lpbench entry is the end-to-end all-figures
// wall time of `cmd/lpbench` (macro), not a `go test` benchmark.
var seedBaselines = map[string]seedBaseline{
	"BenchmarkEngineLoadStore": {
		current: "BenchmarkEngineLoadStore/shadow",
		metrics: map[string]float64{"ns/op": 87.82, "B/op": 106},
	},
	"BenchmarkSweepSuite": {
		current: "BenchmarkSweepSuite/shadow",
		metrics: map[string]float64{"ns/op": 476.2e6, "B/op": 34.5e6, "allocs/op": 653000},
	},
	"BenchmarkInterpreter": {
		current: "BenchmarkInterpreter",
		metrics: map[string]float64{"ns/op": 4.64e6},
	},
	// Measured immediately before the bytecode VM landed: the tree-walking
	// dispatch loop with a fresh interpreter per run.
	"BenchmarkInterpDispatch": {
		current: "BenchmarkInterpDispatch/bytecode",
		metrics: map[string]float64{"ns/op": 6.7e6, "B/op": 5184, "allocs/op": 18},
	},
	"lpbench-all-figures": {
		current: "lpbench-all-figures",
		metrics: map[string]float64{"sec/run": 21.457},
	},
}

// extraCurrent holds macro measurements that do not come from `go test
// -bench` output and are injected into the report alongside the parsed
// lines. Measured with `time ./lpbench > /dev/null` (all figures), best
// of five on an otherwise idle single-core box. The /serial and
// /parallel pair (best of three) is `-parallel 1` vs `-parallel 0`
// (one pool worker per CPU): on the single-core measurement box
// NumCPU=1, so the auto plan resolves both to the serial chunked path
// and the ratio is ~1.0 — the cross-core speedup needs a multi-core
// runner to manifest (forcing `-strategy parallel` on one core costs
// ~16% in goroutine handoff, which is why the auto plan refuses it).
var extraCurrent = map[string]map[string]float64{
	"lpbench-all-figures":          {"sec/run": 0.923},
	"lpbench-all-figures/serial":   {"sec/run": 1.079},
	"lpbench-all-figures/parallel": {"sec/run": 1.074},
}

type output struct {
	Schema             string                      `json:"schema"`
	Note               string                      `json:"note"`
	Benchmarks         []Benchmark                 `json:"benchmarks"`
	FanoutVsPerConfig  map[string]map[string]Ratio `json:"fanout_vs_perconfig"`
	ShadowVsLegacy     map[string]map[string]Ratio `json:"shadow_vs_legacy"`
	BytecodeVsTreewalk map[string]map[string]Ratio `json:"bytecode_vs_treewalk"`
	BatchedVsPerEvent  map[string]map[string]Ratio `json:"batched_vs_perevent"`
	ParallelVsSerial   map[string]map[string]Ratio `json:"parallel_vs_serial"`
	BytecodeLowering   *loweringStats              `json:"bytecode_lowering,omitempty"`
	SeedVsCurrent      map[string]map[string]Ratio `json:"seed_vs_current"`
}

// loweringStats is the static opcode mix of the bytecode compiler over
// the whole registered suite, pulled from BenchmarkBytecodeLowering's
// custom metrics.
type loweringStats struct {
	Insts       float64            `json:"insts"`
	FusedInsts  float64            `json:"fusedInsts"`
	FusedPct    float64            `json:"fusedPct"`
	OpcodeCount map[string]float64 `json:"opcodeCounts"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd metric fields in %q", sc.Text())
		}
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %v", sc.Text(), err)
			}
			metrics[fields[i+1]] = v
		}
		out = append(out, Benchmark{Name: m[1], Iterations: iters, Metrics: metrics})
	}
	return out, sc.Err()
}

// ratios builds a Ratio per shared metric. For per-op costs (ns/op,
// B/op, allocs/op, sec/run) speedup is baseline/current; for rates
// (anything per second) it is current/baseline so >1 always means
// "current is better".
func ratios(base, cur map[string]float64) map[string]Ratio {
	out := map[string]Ratio{}
	for unit, b := range base {
		c, ok := cur[unit]
		if !ok {
			continue
		}
		r := Ratio{Baseline: b, Current: c}
		set := func(v float64) { r.Speedup = &v }
		switch {
		case strings.HasSuffix(unit, "/sec"):
			if b != 0 {
				set(c / b)
			}
		case c != 0:
			set(b / c)
		case b == 0:
			set(1)
		default: // c == 0, b > 0: the cost was eliminated entirely
			r.Eliminated = true
		}
		out[unit] = r
	}
	return out
}

// baselineDoc is the subset of a previous BENCH_*.json the regression
// gate needs.
type baselineDoc struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// gatedUnit reports whether a metric series participates in the
// regression gate.
func gatedUnit(unit string, baseIters, curIters int64) bool {
	switch unit {
	case "ns/op", "sec/run", "B/op", "allocs/op":
		// Per-op cost series only carry signal when both runs measured
		// more than one iteration: a -benchtime=1x smoke folds one-time
		// warm-up (pool growth, memoization caches, lazily sized tables)
		// into its single op, so neither its timings nor its allocation
		// counts are comparable to a steady-state measurement.
		return baseIters > 1 && curIters > 1
	case "fused-insts", "fused-pct":
		// Fusion coverage: higher is better, so the higher-is-worse gate
		// below would fire on improvements. Tracked in the
		// bytecode_lowering table instead.
		return false
	}
	// The remaining custom metrics are deterministic work censuses
	// (instruction counts, opcode mix) — exact at any iteration count,
	// and emitting more work is a real regression — except throughput
	// rates, which are wall-time derived and as noisy as ns/op.
	return !strings.HasSuffix(unit, "/sec")
}

// compare checks the current results against a previous run's benchmarks,
// returning one line per gated series that regressed past tolerance
// percent. All gated series are per-op costs, so higher is worse.
func compare(base, cur []Benchmark, tolerance float64) (regressions, notes []string) {
	curBy := make(map[string]Benchmark, len(cur))
	for _, b := range cur {
		curBy[b.Name] = b
	}
	for _, ob := range base {
		cb, ok := curBy[ob.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in current run", ob.Name))
			continue
		}
		for _, unit := range sortedKeys(ob.Metrics) {
			ov := ob.Metrics[unit]
			cv, ok := cb.Metrics[unit]
			if !ok || ov <= 0 || !gatedUnit(unit, ob.Iterations, cb.Iterations) {
				continue
			}
			if worse := (cv - ov) / ov * 100; worse > tolerance {
				regressions = append(regressions, fmt.Sprintf("%s %s: %.4g -> %.4g (+%.1f%%, tolerance %.0f%%)",
					ob.Name, unit, ov, cv, worse, tolerance))
			}
		}
	}
	return regressions, notes
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func run() error {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	comparePath := flag.String("compare", "", "previous BENCH_*.json to gate against; exit non-zero on regression past -tolerance")
	tolerance := flag.Float64("tolerance", 20, "regression gate threshold in percent (with -compare)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	byName := map[string]map[string]float64{}
	for _, b := range benches {
		byName[b.Name] = b.Metrics
	}
	for name, metrics := range extraCurrent {
		byName[name] = metrics
		benches = append(benches, Benchmark{Name: name, Iterations: 1, Metrics: metrics})
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })

	fanoutVsPerConfig := map[string]map[string]Ratio{}
	for name, fan := range byName {
		root, ok := strings.CutSuffix(name, "/fanout")
		if !ok {
			continue
		}
		perConfig, ok := byName[root+"/per-config"]
		if !ok {
			continue
		}
		fanoutVsPerConfig[root] = ratios(perConfig, fan)
	}

	shadowVsLegacy := map[string]map[string]Ratio{}
	for name, shadow := range byName {
		root, ok := strings.CutSuffix(name, "/shadow")
		if !ok {
			continue
		}
		legacy, ok := byName[root+"/legacy-map"]
		if !ok {
			continue
		}
		shadowVsLegacy[root] = ratios(legacy, shadow)
	}

	bytecodeVsTreewalk := map[string]map[string]Ratio{}
	for name, bc := range byName {
		root, ok := strings.CutSuffix(name, "/bytecode")
		if !ok {
			continue
		}
		tw, ok := byName[root+"/treewalk"]
		if !ok {
			continue
		}
		bytecodeVsTreewalk[root] = ratios(tw, bc)
	}

	batchedVsPerEvent := map[string]map[string]Ratio{}
	for name, bat := range byName {
		root, ok := strings.CutSuffix(name, "/batched")
		if !ok {
			continue
		}
		pe, ok := byName[root+"/per-event"]
		if !ok {
			continue
		}
		batchedVsPerEvent[root] = ratios(pe, bat)
	}

	parallelVsSerial := map[string]map[string]Ratio{}
	for name, par := range byName {
		root, ok := strings.CutSuffix(name, "/parallel")
		if !ok {
			continue
		}
		ser, ok := byName[root+"/serial"]
		if !ok {
			continue
		}
		parallelVsSerial[root] = ratios(ser, par)
	}

	var lowering *loweringStats
	if m, ok := byName["BenchmarkBytecodeLowering"]; ok {
		lowering = &loweringStats{
			Insts:       m["insts"],
			FusedInsts:  m["fused-insts"],
			FusedPct:    m["fused-pct"],
			OpcodeCount: map[string]float64{},
		}
		for unit, v := range m {
			if op, ok := strings.CutPrefix(unit, "op/"); ok {
				lowering.OpcodeCount[op] = v
			}
		}
	}

	seedVsCurrent := map[string]map[string]Ratio{}
	for name, base := range seedBaselines {
		cur, ok := byName[base.current]
		if !ok {
			continue
		}
		seedVsCurrent[name] = ratios(base.metrics, cur)
	}

	doc := output{
		Schema: "loopapalooza-bench/v3",
		Note: "speedup >1 means current/fanout/shadow/bytecode/batched/parallel is better; seed " +
			"baselines measured at commit d237949 with identical access patterns, " +
			"except BenchmarkInterpDispatch (measured at the pre-bytecode-VM commit). " +
			"parallel_vs_serial compares Parallelism=NumCPU against Parallelism=1; on the " +
			"single-core measurement box NumCPU=1, so both legs resolve to the serial " +
			"chunked plan and the ratio is ~1.0 — re-run `make bench` on a multi-core " +
			"runner to measure the cross-core scaling (the class-affinity pool shards " +
			"the 14 paper-grid engine classes across workers).",
		Benchmarks:         benches,
		FanoutVsPerConfig:  fanoutVsPerConfig,
		ShadowVsLegacy:     shadowVsLegacy,
		BytecodeVsTreewalk: bytecodeVsTreewalk,
		BatchedVsPerEvent:  batchedVsPerEvent,
		ParallelVsSerial:   parallelVsSerial,
		BytecodeLowering:   lowering,
		SeedVsCurrent:      seedVsCurrent,
	}
	if *outPath != "" || *comparePath == "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if *outPath == "" {
			if _, err := os.Stdout.Write(buf); err != nil {
				return err
			}
		} else if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			return err
		}
	}

	if *comparePath != "" {
		raw, err := os.ReadFile(*comparePath)
		if err != nil {
			return err
		}
		var base baselineDoc
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parsing baseline %s: %v", *comparePath, err)
		}
		regressions, notes := compare(base.Benchmarks, benches, *tolerance)
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "benchjson: note:", n)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
			}
			return fmt.Errorf("%d series regressed past %.0f%% against %s", len(regressions), *tolerance, *comparePath)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regression past %.0f%% against %s\n", *tolerance, *comparePath)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
