package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loopapalooza/internal/wal"
)

func TestRunRejectsBadRoleWiring(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
	}{
		{"unknown role", config{role: "manager"}},
		{"worker without peers", config{role: "worker"}},
		{"coordinator with peers", config{role: "coordinator", peers: []string{"http://x:1"}}},
		{"standalone with peers", config{role: "standalone", peers: []string{"http://x:1"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rc := run(tc.cfg); rc != 2 {
				t.Fatalf("run() = %d, want usage error 2", rc)
			}
		})
	}
}

// TestWALDumpGolden: -wal-dump renders a journal deterministically —
// header line with generation/snapshot/record/torn counts, then every
// record payload verbatim in append order.
func TestWALDumpGolden(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{
		`{"k":"admit","job":"job-000001"}`,
		`{"k":"lease","task":"task-00000001","worker":"w0"}`,
		`{"k":"commit","job":"job-000001","bench":"181.mcf"}`,
	} {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := dumpWAL(&sb, dir); err != nil {
		t.Fatal(err)
	}
	golden := `wal: generation 0, snapshot 0 bytes, 3 records, 0 torn tail bytes
     0 {"k":"admit","job":"job-000001"}
     1 {"k":"lease","task":"task-00000001","worker":"w0"}
     2 {"k":"commit","job":"job-000001","bench":"181.mcf"}
`
	if sb.String() != golden {
		t.Fatalf("wal dump diverged from golden:\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}

// TestWALDumpReportsTornTail: a torn tail shows up in the header
// instead of failing the dump (the whole point of offline inspection).
func TestWALDumpReportsTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte(`{"k":"admit"}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	tearJournal(t, dir)

	var sb strings.Builder
	if err := dumpWAL(&sb, dir); err != nil {
		t.Fatal(err)
	}
	header, _, _ := strings.Cut(sb.String(), "\n")
	if want := "wal: generation 0, snapshot 0 bytes, 1 records, 3 torn tail bytes"; header != want {
		t.Fatalf("torn dump header = %q, want %q", header, want)
	}
}

// tearJournal appends a 3-byte partial header to the gen-0 journal —
// the debris of a crash mid-write.
func tearJournal(t *testing.T, dir string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, "journal-00000000.wal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
}

func TestWALDumpRejectsMissingDir(t *testing.T) {
	if rc := run(config{walDump: t.TempDir() + "/nonexistent"}); rc != 1 {
		t.Fatalf("run(-wal-dump missing) = %d, want 1", rc)
	}
}
