package main

import "testing"

func TestRunRejectsBadRoleWiring(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
	}{
		{"unknown role", config{role: "manager"}},
		{"worker without peers", config{role: "worker"}},
		{"coordinator with peers", config{role: "coordinator", peers: []string{"http://x:1"}}},
		{"standalone with peers", config{role: "standalone", peers: []string{"http://x:1"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rc := run(tc.cfg); rc != 2 {
				t.Fatalf("run() = %d, want usage error 2", rc)
			}
		})
	}
}
