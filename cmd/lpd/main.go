// Command lpd serves the Loopapalooza limit study over HTTP: a long-lived
// analysis daemon with a content-addressed result cache, per-request
// resource budgets, a server-level concurrency limiter, Prometheus
// metrics, and graceful drain on SIGTERM. With -role it scales from a
// single process to a fault-tolerant coordinator + worker cluster.
//
// Usage:
//
//	lpd -addr :8080
//	lpd -role coordinator -addr :8080 -lease 10s -max-attempts 3
//	lpd -role worker -peers http://coordinator:8080 -addr :8081
//	lpd -role coordinator -addr :8080 -data-dir /var/lib/lpd
//	lpd -wal-dump /var/lib/lpd/wal
//	lpd -addr :8080 -max-concurrent 8 -cache 4096 \
//	    -max-steps 500e6 -timeout 30s -mem-limit 4e6 -shutdown-timeout 15s
//
// With -data-dir the process is durable: the coordinator journals every
// state transition to <dir>/wal (write-ahead, checksummed, fsynced at
// the ack points) and recovers jobs, queues, and leases from it after a
// crash; analyze traces persist to <dir>/traces as chunk-checksummed
// files that a scrubber re-verifies on startup and every
// -scrub-interval, quarantining corruption. -wal-dump prints a journal
// directory's snapshot and records for offline inspection, then exits.
//
// Roles:
//
//	standalone   (default) the full analysis service plus an embedded
//	             coordinator and -local-workers in-process workers, so
//	             the async job API works in one process.
//	coordinator  owns the job store, per-tenant queues, leases, and
//	             per-worker circuit breakers; serves the job API and the
//	             worker-facing lease endpoints. Runs no cells itself
//	             unless -local-workers > 0.
//	worker       claims sweep cells from each -peers coordinator,
//	             executes them on its local harness, heartbeats its
//	             leases, and commits per-cell results.
//
// Endpoints (coordinator and standalone also serve the cluster surface):
//
//	POST /v1/analyze          {"name","source","config","budgets"} → report
//	POST /v1/sweep            {"benchmarks","configs"} → per-cell outcomes
//	POST /v1/jobs             async sweep → {"job","statusUrl"}
//	GET  /v1/jobs/{id}        job status, per-cell states, partial results
//	GET  /v1/cluster/workers  fleet state incl. breaker per worker
//	POST /v1/cluster/*        claim/heartbeat/commit/release (workers)
//	GET  /healthz             liveness (200 while the process is up)
//	GET  /readyz              readiness (503 while draining or quarantined)
//	GET  /metrics             Prometheus text format
//
// Budgets passed per request are clamped to the -max-steps/-timeout/
// -mem-limit caps; requests that omit them inherit the same values as
// defaults. Error bodies carry the failure-taxonomy outcome and the lpa
// exit code the same failure would produce, plus positioned diagnostics
// for rejected programs.
//
// On SIGINT/SIGTERM, lpd flips /readyz to NOT-READY, stops accepting
// connections, and drains for up to -shutdown-timeout. Worker roles cut
// their in-flight executions short and commit the unfinished cells with a
// canceled outcome, which the coordinator requeues without charging their
// retry budgets — shutdown never loses cells.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/cluster"
	"loopapalooza/internal/core"
	"loopapalooza/internal/serve"
	"loopapalooza/internal/wal"
)

// config is the parsed flag set.
type config struct {
	addr          string
	role          string
	peers         []string
	workerID      string
	localWorkers  int
	maxConcurrent int
	cacheEntries  int
	maxSteps      int64
	memLimit      int64
	timeout       time.Duration
	shutdown      time.Duration
	engine        string
	parallel      int
	dataDir       string
	scrubInterval time.Duration
	walDump       string

	lease            time.Duration
	maxAttempts      int
	retryBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	poll             time.Duration
}

func main() {
	var cfg config
	var peers string
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.role, "role", "standalone", "process role: standalone, coordinator, or worker")
	flag.StringVar(&peers, "peers", "", "comma-separated coordinator base URLs (worker role)")
	flag.StringVar(&cfg.workerID, "worker-id", "", "stable worker id (worker role; default host-pid)")
	flag.IntVar(&cfg.localWorkers, "local-workers", -1, "in-process workers (-1 = 1 for standalone, 0 for coordinator)")
	flag.IntVar(&cfg.maxConcurrent, "max-concurrent", 0, "simultaneous analysis runs (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cacheEntries, "cache", 0, "result-cache capacity in entries (0 = default)")
	flag.Int64Var(&cfg.maxSteps, "max-steps", 500_000_000, "per-run dynamic instruction budget and cap (0 = interpreter default)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-run wall-clock budget and cap (0 = none)")
	flag.Int64Var(&cfg.memLimit, "mem-limit", 0, "per-run heap budget in 64-bit cells and cap (0 = interpreter default)")
	flag.DurationVar(&cfg.shutdown, "shutdown-timeout", 15*time.Second,
		"graceful-shutdown window; on expiry in-flight cells are released back to the queue as canceled")
	flag.StringVar(&cfg.engine, "engine", "bytecode", "execution engine: bytecode or treewalk (oracle)")
	flag.IntVar(&cfg.parallel, "parallel", 0,
		"fan-out worker pool width per sweep (0 = one worker per CPU, 1 = serial; reports are bit-identical at every width)")
	flag.StringVar(&cfg.dataDir, "data-dir", "",
		"durable state root: <dir>/wal journals the coordinator for crash recovery, <dir>/traces holds the checksummed trace store (\"\" = in-memory only)")
	flag.DurationVar(&cfg.scrubInterval, "scrub-interval", 0,
		"trace-store scrub period (0 = default, negative = startup scrub only)")
	flag.StringVar(&cfg.walDump, "wal-dump", "",
		"inspect the journal directory (e.g. <data-dir>/wal) and exit: prints the active generation, snapshot size, every record, and any torn tail")
	flag.DurationVar(&cfg.lease, "lease", cluster.DefaultLease, "cluster task lease duration")
	flag.IntVar(&cfg.maxAttempts, "max-attempts", cluster.DefaultMaxAttempts, "per-cell retry budget (executions)")
	flag.DurationVar(&cfg.retryBackoff, "retry-backoff", cluster.DefaultRetryBackoff, "base of the exponential retry backoff")
	flag.IntVar(&cfg.breakerThreshold, "breaker-threshold", cluster.DefaultBreakerThreshold, "consecutive failures that OPEN a worker's breaker")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", cluster.DefaultBreakerCooldown, "OPEN dwell before a half-open probe")
	flag.DurationVar(&cfg.poll, "poll", 100*time.Millisecond, "worker idle poll interval")
	flag.Parse()
	if peers != "" {
		for _, p := range strings.Split(peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.peers = append(cfg.peers, p)
			}
		}
	}
	os.Exit(run(cfg))
}

func run(cfg config) int {
	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if cfg.walDump != "" {
		if err := dumpWAL(os.Stdout, cfg.walDump); err != nil {
			fmt.Fprintln(os.Stderr, "lpd:", err)
			return 1
		}
		return 0
	}
	engine, err := core.ParseEngineKind(cfg.engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpd:", err)
		return 2
	}
	budgets := serve.Budgets{
		MaxSteps:     cfg.maxSteps,
		MaxHeapCells: cfg.memLimit,
		TimeoutMs:    cfg.timeout.Milliseconds(),
	}
	opts := serve.Options{
		DefaultBudgets: budgets,
		MaxBudgets:     budgets,
		MaxConcurrent:  cfg.maxConcurrent,
		CacheEntries:   cfg.cacheEntries,
		Engine:         engine,
		Parallelism:    cfg.parallel,
		Log:            log,
	}
	if cfg.dataDir != "" {
		opts.TraceDir = filepath.Join(cfg.dataDir, "traces")
		opts.ScrubInterval = cfg.scrubInterval
	}

	// Role wiring: who owns a coordinator, and which Coordination surface
	// the local workers speak.
	var coord *cluster.Coordinator
	var workerSurface cluster.Coordination
	localWorkers := cfg.localWorkers
	switch cfg.role {
	case "standalone", "coordinator":
		if len(cfg.peers) > 0 {
			fmt.Fprintf(os.Stderr, "lpd: -peers is only meaningful with -role worker\n")
			return 2
		}
		copts := cluster.CoordinatorOptions{
			Lease:            cfg.lease,
			MaxAttempts:      cfg.maxAttempts,
			RetryBackoff:     cfg.retryBackoff,
			BreakerThreshold: cfg.breakerThreshold,
			BreakerCooldown:  cfg.breakerCooldown,
		}
		if cfg.dataDir != "" {
			// Durable coordinator: every transition journaled to
			// <data-dir>/wal, recovered on the next start.
			copts.DataDir = filepath.Join(cfg.dataDir, "wal")
		}
		coord, err = cluster.OpenCoordinator(copts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lpd:", err)
			return 1
		}
		defer coord.Close()
		opts.Cluster = coord
		workerSurface = coord
		if localWorkers < 0 {
			if cfg.role == "standalone" {
				localWorkers = 1
			} else {
				localWorkers = 0
			}
		}
	case "worker":
		if len(cfg.peers) == 0 {
			fmt.Fprintf(os.Stderr, "lpd: -role worker needs -peers\n")
			return 2
		}
		if localWorkers < 0 {
			localWorkers = 1
		}
	default:
		fmt.Fprintf(os.Stderr, "lpd: unknown -role %q (standalone, coordinator, worker)\n", cfg.role)
		return 2
	}

	s, err := serve.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpd:", err)
		return 1
	}

	// The worker fleet of this process: against the embedded coordinator
	// (standalone/coordinator) or against each remote peer (worker role).
	workerID := cfg.workerID
	if workerID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "lpd"
		}
		workerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var workers []*cluster.Worker
	addWorker := func(id string, surface cluster.Coordination) int {
		// Each worker gets its own harness so the fleet honours the
		// process-level engine and fan-out pool width on every node.
		harness := bench.NewHarnessWith(bench.HarnessOptions{
			Run: core.RunOptions{Engine: engine, Parallelism: cfg.parallel},
		})
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			ID: id, Coordinator: surface, Harness: harness, Poll: cfg.poll, Log: log,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lpd:", err)
			return 1
		}
		workers = append(workers, w)
		return 0
	}
	if cfg.role == "worker" {
		for i, peer := range cfg.peers {
			id := workerID
			if len(cfg.peers) > 1 {
				id = fmt.Sprintf("%s-p%d", workerID, i)
			}
			if rc := addWorker(id, cluster.NewClient(peer, nil)); rc != 0 {
				return rc
			}
		}
	} else {
		for i := 0; i < localWorkers; i++ {
			if rc := addWorker(fmt.Sprintf("%s-w%d", workerID, i), workerSurface); rc != 0 {
				return rc
			}
		}
	}
	// A quarantined or draining worker makes the process NOT-READY.
	for _, w := range workers {
		w := w
		s.AddReadyCheck(func() error {
			if !w.Ready() {
				return fmt.Errorf("worker %s not ready (draining or breaker quarantine)", w.ID())
			}
			return nil
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	workerCtx, cancelWorkers := context.WithCancel(context.Background())
	defer cancelWorkers()
	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(workerCtx); err != nil && !errors.Is(err, context.Canceled) {
				log.Error("worker stopped", "worker", w.ID(), "err", err.Error())
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(cfg.addr) }()
	log.Info("lpd listening", "addr", cfg.addr, "role", cfg.role,
		"engine", engine.String(), "workers", len(workers), "maxSteps", cfg.maxSteps,
		"timeoutMs", cfg.timeout.Milliseconds(), "memLimit", cfg.memLimit)

	select {
	case err := <-errc:
		cancelWorkers()
		wg.Wait()
		if err != nil {
			log.Error("serve failed", "err", err.Error())
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	// Graceful shutdown: flip readiness, stop claiming, cut in-flight
	// executions short so their cells commit back as canceled (the
	// coordinator refunds them), then drain the HTTP side.
	log.Info("draining", "window", cfg.shutdown.String())
	for _, w := range workers {
		w.StartDrain()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdown)
	defer cancel()
	cancelWorkers()
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-drainCtx.Done():
		log.Warn("shutdown timeout: abandoning in-flight workers (leases will expire)")
	}
	err = s.Shutdown(drainCtx)
	s.Close()
	if err != nil {
		log.Error("drain incomplete", "err", err.Error())
		return 1
	}
	log.Info("lpd stopped")
	return 0
}

// dumpWAL renders a journal directory for inspection without opening it
// for writing: the active generation, the snapshot size, every valid
// record payload in order, and how many torn tail bytes a recovery
// would truncate. Records are the coordinator's JSON transition log, so
// the dump is greppable as-is.
func dumpWAL(w io.Writer, dir string) error {
	info, err := wal.Inspect(dir)
	if err != nil {
		return fmt.Errorf("inspecting %s: %w", dir, err)
	}
	fmt.Fprintf(w, "wal: generation %d, snapshot %d bytes, %d records, %d torn tail bytes\n",
		info.Gen, info.SnapshotBytes, len(info.Records), info.TornBytes)
	for i, rec := range info.Records {
		fmt.Fprintf(w, "%6d %s\n", i, rec)
	}
	return nil
}
