// Command lpd serves the Loopapalooza limit study over HTTP: a long-lived
// analysis daemon with a content-addressed result cache, per-request
// resource budgets, a server-level concurrency limiter, Prometheus
// metrics, and graceful drain on SIGTERM.
//
// Usage:
//
//	lpd -addr :8080
//	lpd -addr :8080 -max-concurrent 8 -cache 4096 \
//	    -max-steps 500e6 -timeout 30s -mem-limit 4e6 -drain 15s
//
// Endpoints:
//
//	POST /v1/analyze  {"name","source","config","budgets"} → report JSON
//	POST /v1/sweep    {"benchmarks","configs"} → per-cell outcomes
//	GET  /healthz     liveness and cache/limiter gauges
//	GET  /metrics     Prometheus text format
//
// Budgets passed per request are clamped to the -max-steps/-timeout/
// -mem-limit caps; requests that omit them inherit the same values as
// defaults. Error bodies carry the failure-taxonomy outcome and the lpa
// exit code the same failure would produce, plus positioned diagnostics
// for rejected programs.
//
// On SIGINT/SIGTERM, lpd stops accepting connections, drains in-flight
// requests for up to -drain, then cancels any stragglers and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loopapalooza/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneous analysis runs (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 0, "result-cache capacity in entries (0 = default)")
	maxSteps := flag.Int64("max-steps", 500_000_000, "per-run dynamic instruction budget and cap (0 = interpreter default)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-run wall-clock budget and cap (0 = none)")
	memLimit := flag.Int64("mem-limit", 0, "per-run heap budget in 64-bit cells and cap (0 = interpreter default)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	os.Exit(run(*addr, *maxConcurrent, *cacheEntries, *maxSteps, *memLimit, *timeout, *drain))
}

func run(addr string, maxConcurrent, cacheEntries int, maxSteps, memLimit int64, timeout, drain time.Duration) int {
	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	budgets := serve.Budgets{
		MaxSteps:     maxSteps,
		MaxHeapCells: memLimit,
		TimeoutMs:    timeout.Milliseconds(),
	}
	s, err := serve.New(serve.Options{
		DefaultBudgets: budgets,
		MaxBudgets:     budgets,
		MaxConcurrent:  maxConcurrent,
		CacheEntries:   cacheEntries,
		Log:            log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpd:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(addr) }()
	log.Info("lpd listening", "addr", addr, "maxSteps", maxSteps,
		"timeoutMs", timeout.Milliseconds(), "memLimit", memLimit)

	select {
	case err := <-errc:
		if err != nil {
			log.Error("serve failed", "err", err.Error())
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	log.Info("draining", "window", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = s.Shutdown(drainCtx)
	s.Close()
	if err != nil {
		log.Error("drain incomplete", "err", err.Error())
		return 1
	}
	log.Info("lpd stopped")
	return 0
}
