// Command lpbench regenerates the evaluation of the Loopapalooza paper:
// Figures 2–5 over the synthetic SPEC/EEMBC-like benchmark suites.
//
// Usage:
//
//	lpbench                  # all figures
//	lpbench -figure 2        # one figure
//	lpbench -bench 181.mcf   # per-benchmark report under every paper config
//	lpbench -list            # list benchmarks
package main

import (
	"flag"
	"fmt"
	"os"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

func main() {
	figure := flag.Int("figure", 0, "regenerate one figure (2-5); 0 = all")
	benchName := flag.String("bench", "", "report a single benchmark under every paper configuration")
	list := flag.Bool("list", false, "list registered benchmarks")
	matrix := flag.Bool("matrix", false, "per-benchmark speedups under key configurations")
	flag.Parse()

	if *matrix {
		if err := printMatrix(); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-10s %-16s %s\n", b.Suite, b.Name, b.Modeled)
		}
		return
	}
	if *benchName != "" {
		if err := reportOne(*benchName); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			os.Exit(1)
		}
		return
	}
	h := bench.NewHarness()
	run := func(n int) error {
		switch n {
		case 2:
			rows, err := h.Figure2()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSpeedupFigure(
				"Figure 2: GEOMEAN speedups, non-numeric suites (SpecINT-like)",
				bench.NonNumericSuites(), rows))
		case 3:
			rows, err := h.Figure3()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSpeedupFigure(
				"Figure 3: GEOMEAN speedups, numeric suites (EEMBC/SpecFP-like)",
				bench.NumericSuites(), rows))
		case 4:
			rows, err := h.Figure4()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure4(rows))
		case 5:
			rows, err := h.Figure5()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure5(rows))
		default:
			return fmt.Errorf("no figure %d (the paper has figures 2-5)", n)
		}
		fmt.Println()
		return nil
	}
	if *figure != 0 {
		if err := run(*figure); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			os.Exit(1)
		}
		return
	}
	for n := 2; n <= 5; n++ {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			os.Exit(1)
		}
	}
}

func printMatrix() error {
	cfgs := []core.Config{
		{Model: core.DOALL},
		{Model: core.PDOALL, Reduc: 1, Dep: 2, Fn: 2},
		{Model: core.PDOALL, Reduc: 0, Dep: 3, Fn: 3},
		{Model: core.HELIX, Reduc: 0, Dep: 0, Fn: 2},
		{Model: core.HELIX, Reduc: 1, Dep: 1, Fn: 2},
	}
	h := bench.NewHarness()
	if err := h.Prefetch(bench.All(), cfgs); err != nil {
		return err
	}
	fmt.Printf("%-10s %-16s %9s %9s %9s %9s %9s %10s\n",
		"suite", "benchmark", "doall", "pd-r1d2f2", "pd-d3f3", "hx-d0f2", "hx-r1d1f2", "serialMI")
	for _, b := range bench.All() {
		var cells []string
		var serial int64
		for _, cfg := range cfgs {
			r, err := h.Report(b, cfg)
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%8.2fx", r.Speedup()))
			serial = r.SerialCost
		}
		fmt.Printf("%-10s %-16s %s %9.2f\n", b.Suite, b.Name,
			joinCells(cells), float64(serial)/1e6)
	}
	return nil
}

func joinCells(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += " "
		}
		out += c
	}
	return out
}

func reportOne(name string) error {
	b := bench.ByName(name)
	if b == nil {
		return fmt.Errorf("unknown benchmark %q (try -list)", name)
	}
	fmt.Printf("%s (%s): %s\n\n", b.Name, b.Suite, b.Modeled)
	for _, cfg := range core.PaperConfigs() {
		r, err := b.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s speedup %8.2fx  coverage %5.1f%%\n", cfg, r.Speedup(), 100*r.Coverage())
	}
	return nil
}
