// Command lpbench regenerates the evaluation of the Loopapalooza paper:
// Figures 2–5 over the synthetic SPEC/EEMBC-like benchmark suites.
//
// Usage:
//
//	lpbench                  # all figures
//	lpbench -figure 2        # one figure
//	lpbench -bench 181.mcf   # per-benchmark report under every paper config
//	lpbench -list            # list benchmarks
//
// Resource budgets and fault isolation:
//
//	lpbench -max-steps 100e6 -timeout 30s -mem-limit 1e6
//
// bounds every benchmark run by dynamic instruction count, wall-clock
// time, and simulated heap cells. With -keep-going (the default) a cell
// that exhausts a budget, faults, or panics is annotated in the figures
// ("n/a(steps)", "n/a(time)", ...) and classified in the failure-summary
// footer; suite geomeans cover the surviving benchmarks. With
// -keep-going=false the first failed cell aborts with exit code 1.
// lpbench exits 0 when every cell completed and 3 when output was
// rendered with failed cells (figures, -matrix, and -bench alike).
//
// Execution sharing and traces:
//
//	lpbench -fanout=false        # one interpretation per cell (baseline)
//	lpbench -trace-dir traces/   # record each execution's binary event trace
//	lpbench -engine treewalk     # execute on the tree-walking oracle engine
//	lpbench -parallel 1          # pin the fan-out worker pool to one worker
//	lpbench -strategy chunked    # force a fan-out strategy (auto default)
//
// By default every benchmark is interpreted ONCE per sweep and the event
// stream is fanned out to all configurations' engines (reports are
// bit-identical to per-cell runs, at every -parallel width). -trace-dir
// additionally records each execution as a replayable .lptrace file; a
// stats footer on stderr counts the executions saved and names the
// resolved fan-out strategy.
//
// Profiling:
//
//	lpbench -cpuprofile cpu.out -memprofile mem.out -figure 2
//
// writes pprof profiles covering the whole run (see EXPERIMENTS.md for the
// analysis recipe).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

func main() { os.Exit(run()) }

// run executes the command and returns the process exit code. All exits
// funnel through here so deferred cleanup (profile writers) always runs.
func run() int {
	figure := flag.Int("figure", 0, "regenerate one figure (2-5); 0 = all")
	benchName := flag.String("bench", "", "report a single benchmark under every paper configuration")
	list := flag.Bool("list", false, "list registered benchmarks")
	matrix := flag.Bool("matrix", false, "per-benchmark speedups under key configurations")
	maxSteps := flag.Int64("max-steps", 0, "per-run dynamic instruction budget (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none)")
	memLimit := flag.Int64("mem-limit", 0, "per-run heap budget in 64-bit cells (0 = default)")
	keepGoing := flag.Bool("keep-going", true, "render figures over surviving cells instead of aborting on the first failure")
	tracker := flag.String("tracker", "shadow", "dependence tracker: shadow or legacy-map (oracle)")
	engineFlag := flag.String("engine", "bytecode", "execution engine: bytecode or treewalk (oracle)")
	fanout := flag.Bool("fanout", true, "share one execution across all of a benchmark's configurations (reports are bit-identical either way)")
	batch := flag.Bool("batch", true, "feed engines whole event chunks through the batched tracker path (per-event hook dispatch when off; reports are bit-identical either way)")
	parallel := flag.Int("parallel", 0, "fan-out worker pool width per execution (0 = one worker per CPU, 1 = serial; reports are bit-identical at every width)")
	strategy := flag.String("strategy", "auto", "fan-out strategy: auto, sequential, chunked, or parallel")
	traceDir := flag.String("trace-dir", "", "record each benchmark execution's event trace into this directory (implies -fanout paths)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	var kind core.TrackerKind
	switch *tracker {
	case "shadow":
		kind = core.TrackerShadow
	case "legacy-map":
		kind = core.TrackerLegacyMap
	default:
		fmt.Fprintf(os.Stderr, "lpbench: unknown -tracker %q (shadow or legacy-map)\n", *tracker)
		return 2
	}
	engine, err := core.ParseEngineKind(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpbench: %v\n", err)
		return 2
	}
	strat, err := core.ParseFanoutStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpbench: %v\n", err)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lpbench:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lpbench:", err)
			}
			f.Close()
		}()
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			return 1
		}
	}
	runOpts := core.RunOptions{
		MaxSteps:     *maxSteps,
		Timeout:      *timeout,
		MaxHeapCells: *memLimit,
		Tracker:      kind,
		Engine:       engine,
		DisableBatch: !*batch,
		Strategy:     strat,
		Parallelism:  *parallel,
	}
	h := bench.NewHarnessWith(bench.HarnessOptions{
		Run:            runOpts,
		RetryTransient: true,
		DisableFanout:  !*fanout,
		TraceDir:       *traceDir,
	})
	defer func() {
		if st := h.Stats(); st.Executions > 0 {
			// The plan for the full paper grid — what each fan-out sweep
			// actually scheduled.
			plan := core.PlanFanout(len(core.PaperConfigs()), runOpts)
			fmt.Fprintf(os.Stderr, "lpbench: %d execution(s) under the %s engine served %d cell(s), %d saved by fan-out (strategy %s)",
				st.Executions, engine, st.Cells, st.Saved, plan)
			if st.Traces > 0 {
				fmt.Fprintf(os.Stderr, ", %d trace(s) recorded to %s", st.Traces, *traceDir)
			}
			fmt.Fprintln(os.Stderr)
		}
	}()

	switch {
	case *matrix:
		if err := printMatrix(h); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			return 1
		}
		return partialCode(h)
	case *list:
		for _, b := range bench.All() {
			fmt.Printf("%-10s %-16s %s\n", b.Suite, b.Name, b.Modeled)
		}
		return 0
	case *benchName != "":
		if err := reportOne(h, *benchName); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			return 1
		}
		return partialCode(h)
	default:
		return runFigures(h, *figure, *keepGoing)
	}
}

// partialCode returns 3 when any cell failed, mirroring the figure path's
// partial-result exit code.
func partialCode(h *bench.Harness) int {
	if len(h.Failures()) > 0 {
		return 3
	}
	return 0
}

// runFigures renders the requested figures, then the failure-summary
// footer. Exit codes: 0 all cells ok, 1 aborted (-keep-going=false),
// 3 figures rendered with failed cells.
func runFigures(h *bench.Harness, figure int, keepGoing bool) int {
	run := func(n int) error {
		switch n {
		case 2:
			rows, err := h.Figure2()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSpeedupFigure(
				"Figure 2: GEOMEAN speedups, non-numeric suites (SpecINT-like)",
				bench.NonNumericSuites(), rows))
		case 3:
			rows, err := h.Figure3()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSpeedupFigure(
				"Figure 3: GEOMEAN speedups, numeric suites (EEMBC/SpecFP-like)",
				bench.NumericSuites(), rows))
		case 4:
			rows, err := h.Figure4()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure4(rows))
		case 5:
			rows, err := h.Figure5()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure5(rows))
		default:
			return fmt.Errorf("no figure %d (the paper has figures 2-5)", n)
		}
		fmt.Println()
		return nil
	}

	figures := []int{2, 3, 4, 5}
	if figure != 0 {
		figures = []int{figure}
	}
	for _, n := range figures {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			return 1
		}
		if !keepGoing {
			if failures := h.Failures(); len(failures) > 0 {
				fmt.Fprint(os.Stderr, bench.FormatFailureSummary(failures))
				fmt.Fprintln(os.Stderr, "lpbench: aborting (-keep-going=false)")
				return 1
			}
		}
	}
	if failures := h.Failures(); len(failures) > 0 {
		fmt.Print(bench.FormatFailureSummary(failures))
		return 3
	}
	return 0
}

func printMatrix(h *bench.Harness) error {
	cfgs := []core.Config{
		{Model: core.DOALL},
		{Model: core.PDOALL, Reduc: 1, Dep: 2, Fn: 2},
		{Model: core.PDOALL, Reduc: 0, Dep: 3, Fn: 3},
		{Model: core.HELIX, Reduc: 0, Dep: 0, Fn: 2},
		{Model: core.HELIX, Reduc: 1, Dep: 1, Fn: 2},
	}
	h.Sweep(nil, bench.All(), cfgs)
	fmt.Printf("%-10s %-16s %9s %9s %9s %9s %9s %10s\n",
		"suite", "benchmark", "doall", "pd-r1d2f2", "pd-d3f3", "hx-d0f2", "hx-r1d1f2", "serialMI")
	for _, b := range bench.All() {
		var cells []string
		var serial int64
		for _, cfg := range cfgs {
			r, err := h.Report(b, cfg)
			if err != nil {
				cells = append(cells, fmt.Sprintf("%9s", "n/a("+core.Classify(err).Short()+")"))
				continue
			}
			cells = append(cells, fmt.Sprintf("%8.2fx", r.Speedup()))
			serial = r.SerialCost
		}
		fmt.Printf("%-10s %-16s %s %9.2f\n", b.Suite, b.Name,
			joinCells(cells), float64(serial)/1e6)
	}
	if failures := h.Failures(); len(failures) > 0 {
		fmt.Print(bench.FormatFailureSummary(failures))
	}
	return nil
}

func joinCells(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += " "
		}
		out += c
	}
	return out
}

func reportOne(h *bench.Harness, name string) error {
	b := bench.ByName(name)
	if b == nil {
		return fmt.Errorf("unknown benchmark %q (try -list)", name)
	}
	fmt.Printf("%s (%s): %s\n\n", b.Name, b.Suite, b.Modeled)
	// Sweep the whole grid first so all fourteen cells share one
	// execution; the loop below reads the completed cells.
	h.Sweep(nil, []*bench.Benchmark{b}, core.PaperConfigs())
	for _, cfg := range core.PaperConfigs() {
		r, err := h.Report(b, cfg)
		if err != nil {
			fmt.Printf("%-28s %s: %v\n", cfg, core.Classify(err), err)
			continue
		}
		fmt.Printf("%-28s speedup %8.2fx  coverage %5.1f%%\n", cfg, r.Speedup(), 100*r.Coverage())
	}
	return nil
}
