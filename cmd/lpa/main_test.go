package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"loopapalooza/internal/core"
)

// buildLpa compiles the lpa binary once per test process.
func buildLpa(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lpa")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runLpa executes the built binary and returns exit code, stdout, stderr.
func runLpa(t *testing.T, bin string, stdin string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run: %v", err)
	}
	return code, stdout.String(), stderr.String()
}

// assertNoCrashArtifacts fails if output looks like an uncontrolled crash.
func assertNoCrashArtifacts(t *testing.T, stderr string) {
	t.Helper()
	for _, marker := range []string{"goroutine ", "panic:", "runtime error:\n\tgoroutine"} {
		if strings.Contains(stderr, marker) {
			t.Errorf("stderr contains crash artifact %q:\n%s", marker, stderr)
		}
	}
}

func TestCLICompileErrorRendering(t *testing.T) {
	bin := buildLpa(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.lpc")
	src := "func a() int {\n\tvar x int = ;\n\treturn 0;\n}\nfunc b() int {\n\treturn 1 + ;\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runLpa(t, bin, "", path)
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if stdout != "" {
		t.Errorf("diagnostics leaked to stdout:\n%s", stdout)
	}
	assertNoCrashArtifacts(t, stderr)

	// Canonical positioned lines for BOTH independent faults.
	canonical := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(path) + `:\d+:\d+: `)
	if got := len(canonical.FindAllString(stderr, -1)); got < 2 {
		t.Errorf("canonical file:line:col lines = %d, want >= 2:\n%s", got, stderr)
	}
	if !strings.Contains(stderr, "^") {
		t.Errorf("no caret snippet rendered:\n%s", stderr)
	}
	if !strings.Contains(stderr, path+":2:14: expected expression, found ;") {
		t.Errorf("missing exact first diagnostic:\n%s", stderr)
	}
}

func TestCLITypeErrorFromStdin(t *testing.T) {
	bin := buildLpa(t)
	code, _, stderr := runLpa(t, bin, "func main() int { return q; }\n")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "<stdin>:1:26: undefined: q") {
		t.Errorf("missing positioned sema diagnostic:\n%s", stderr)
	}
	assertNoCrashArtifacts(t, stderr)
}

func TestCLISuccessAndTaxonomyExitCodes(t *testing.T) {
	bin := buildLpa(t)
	dir := t.TempDir()
	ok := filepath.Join(dir, "ok.lpc")
	if err := os.WriteFile(ok, []byte("func main() int {\n\tvar s int = 0;\n\tfor (var i int = 0; i < 100; i = i + 1) { s = s + i; }\n\treturn s;\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if code, stdout, stderr := runLpa(t, bin, "", ok); code != 0 {
		t.Errorf("exit = %d, stderr:\n%s", code, stderr)
	} else if !strings.Contains(stdout, "speedup") {
		t.Errorf("no report on stdout:\n%s", stdout)
	}

	// Step budget exhaustion → exit 4.
	loop := filepath.Join(dir, "loop.lpc")
	if err := os.WriteFile(loop, []byte("func main() int {\n\tvar s int = 0;\n\twhile (true) { s = s + 1; }\n\treturn s;\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runLpa(t, bin, "", "-max-steps", "100000", loop)
	if code != 4 {
		t.Errorf("step-limit exit = %d, want 4\nstderr:\n%s", code, stderr)
	}
	assertNoCrashArtifacts(t, stderr)

	// Guest runtime fault → exit 3.
	div := filepath.Join(dir, "div.lpc")
	if err := os.WriteFile(div, []byte("func main() int {\n\tvar z int = 0;\n\treturn 1 / z;\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runLpa(t, bin, "", div)
	if code != 3 {
		t.Errorf("runtime-fault exit = %d, want 3\nstderr:\n%s", code, stderr)
	}
	assertNoCrashArtifacts(t, stderr)
}

// TestExitCodeMapping pins the exitCode function over the whole failure
// taxonomy — the serve layer's JSON error bodies report the same numbers
// (core.Outcome.ExitCode), so this table is the cross-surface contract.
func TestExitCodeMapping(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want int
	}{
		{"runtime fault", fmt.Errorf("core: p: %w", core.ErrRuntime), 3},
		{"step limit", fmt.Errorf("core: p: %w", core.ErrStepLimit), 4},
		{"mem limit", fmt.Errorf("core: p: %w", core.ErrMemLimit), 5},
		{"deadline", fmt.Errorf("core: p: %w", core.ErrDeadline), 6},
		{"context deadline", context.DeadlineExceeded, 6},
		{"canceled", fmt.Errorf("core: p: %w", core.ErrCanceled), 7},
		{"context canceled", context.Canceled, 7},
		{"recovered panic", &core.PanicError{Val: "boom"}, 1},
		{"compile error", errors.New("prog.lpc:1:1: syntax error"), 1},
	}
	for _, tt := range tests {
		if got := exitCode(tt.err); got != tt.want {
			t.Errorf("%s: exitCode = %d, want %d", tt.name, got, tt.want)
		}
	}
}

// TestCLIMemAndTimeoutExitCodes completes the 3-7 taxonomy at the process
// level: heap exhaustion → 5, wall-clock expiry → 6.
func TestCLIMemAndTimeoutExitCodes(t *testing.T) {
	bin := buildLpa(t)
	dir := t.TempDir()

	hog := filepath.Join(dir, "hog.lpc")
	if err := os.WriteFile(hog, []byte("func main() int {\n\tvar p *int = alloc(1000000);\n\treturn *p;\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runLpa(t, bin, "", "-mem-limit", "1000", hog)
	if code != 5 {
		t.Errorf("mem-limit exit = %d, want 5\nstderr:\n%s", code, stderr)
	}
	assertNoCrashArtifacts(t, stderr)

	spin := filepath.Join(dir, "spin.lpc")
	if err := os.WriteFile(spin, []byte("func main() int {\n\tvar s int = 0;\n\twhile (true) { s = s + 1; }\n\treturn s;\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runLpa(t, bin, "", "-timeout", "100ms", spin)
	if code != 6 {
		t.Errorf("timeout exit = %d, want 6\nstderr:\n%s", code, stderr)
	}
	assertNoCrashArtifacts(t, stderr)
}

func TestCLIMissingFile(t *testing.T) {
	bin := buildLpa(t)
	code, _, stderr := runLpa(t, bin, "", filepath.Join(t.TempDir(), "nope.lpc"))
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	assertNoCrashArtifacts(t, stderr)
}
