// Command lpa runs the Loopapalooza limit study on one LPC program.
//
// Usage:
//
//	lpa [-config "reduc1-dep1-fn2 HELIX"] prog.lpc
//	lpa -all prog.lpc        # every paper configuration
//	lpa -ir prog.lpc         # dump the canonicalized IR
//	lpa -run prog.lpc        # just execute the program
//
// Resource budgets:
//
//	lpa -max-steps 100e6 -timeout 30s -mem-limit 1e6 prog.lpc
//
// With no file, lpa reads the program from stdin.
//
// Compile errors render one canonical "file:line:col: message" line per
// fault, each with a caret-marked source snippet, on stderr. lpa never
// exits via panic: an internal compiler bug renders as a diagnostic with a
// reproduction hint instead of a goroutine dump.
//
// Exit codes map the failure taxonomy so scripts can classify runs
// without parsing messages:
//
//	0  success
//	1  usage, I/O, compile, or configuration error
//	3  guest runtime fault (division by zero, null/unmapped access, ...)
//	4  step budget exhausted
//	5  memory budget exhausted
//	6  deadline/timeout exceeded
//	7  canceled
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/bytecode"
	"loopapalooza/internal/core"
	"loopapalooza/internal/diag"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/lang"
)

func main() {
	cfgStr := flag.String("config", "reduc1-dep1-fn2 HELIX", "limit-study configuration")
	all := flag.Bool("all", false, "run every paper configuration")
	dumpIR := flag.Bool("ir", false, "print the canonicalized IR and loop analysis, then exit")
	justRun := flag.Bool("run", false, "execute the program without the limit study")
	maxSteps := flag.Int64("max-steps", 0, "dynamic instruction budget (0 = default)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
	memLimit := flag.Int64("mem-limit", 0, "heap budget in 64-bit cells (0 = default)")
	engineFlag := flag.String("engine", "bytecode", "execution engine: bytecode or treewalk (oracle)")
	parallel := flag.Int("parallel", 0, "fan-out worker pool width for -all (0 = one worker per CPU, 1 = serial; reports are bit-identical at every width)")
	flag.Parse()

	engine, err := core.ParseEngineKind(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpa:", err)
		os.Exit(1)
	}
	opts := core.RunOptions{
		MaxSteps:     *maxSteps,
		Timeout:      *timeout,
		MaxHeapCells: *memLimit,
		Engine:       engine,
		Parallelism:  *parallel,
	}
	os.Exit(runMain(*cfgStr, *all, *dumpIR, *justRun, flag.Arg(0), opts))
}

// runMain loads the program, runs the requested mode, and renders any
// failure. It is the no-panic boundary: whatever goes wrong below, the
// process exits through a diagnostic and a taxonomy exit code, never
// through a goroutine dump.
func runMain(cfgStr string, all, dumpIR, justRun bool, path string, opts core.RunOptions) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr,
				"lpa: internal error: %v\nThis is a bug in lpa, not in your program. Please report it together with the input file.\n", r)
			code = 1
		}
	}()

	name := "<stdin>"
	var src []byte
	var err error
	if path == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		name = path
		src, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpa:", err)
		return 1
	}

	if err := run(cfgStr, all, dumpIR, justRun, name, string(src), opts); err != nil {
		renderError(err, string(src))
		return exitCode(err)
	}
	return 0
}

// renderError writes err to stderr: positioned diagnostics and ICEs render
// in their canonical caret form, everything else as a one-line message.
func renderError(err error, src string) {
	var l diag.List
	var d *diag.Diagnostic
	var ice *diag.ICE
	switch {
	case errors.As(err, &l):
		fmt.Fprint(os.Stderr, diag.Format(l, src))
	case errors.As(err, &ice):
		fmt.Fprint(os.Stderr, diag.Format(ice, src))
	case errors.As(err, &d):
		fmt.Fprint(os.Stderr, diag.Format(d, src))
	default:
		fmt.Fprintln(os.Stderr, "lpa:", err)
	}
}

// exitCode maps the failure taxonomy to distinct exit codes — the shared
// contract lives on core.Outcome so the serve layer's error bodies report
// the same numbers.
func exitCode(err error) int {
	if code := core.Classify(err).ExitCode(); code != 0 {
		return code
	}
	// A non-nil error always exits non-zero, even if it classified as OK.
	return 1
}

func run(cfgStr string, all, dumpIR, justRun bool, name, src string, opts core.RunOptions) error {
	if dumpIR {
		m, err := lang.Compile(name, src)
		if err != nil {
			return err
		}
		info, err := analysis.AnalyzeModule(m)
		if err != nil {
			return err
		}
		fmt.Print(m)
		fmt.Println("loops:")
		for _, lm := range info.Loops {
			fmt.Printf("  %-24s depth %d  IVs %d  reductions %d  non-computable LCDs %d  calls=%v\n",
				lm.ID(), lm.Loop.Depth, len(lm.Computable), len(lm.Reductions),
				len(lm.NonComputable), lm.HasCall)
			for _, line := range lm.SCEV.SortedEvoStrings() {
				fmt.Printf("      %s\n", line)
			}
		}
		return nil
	}

	info, err := core.AnalyzeSource(name, src)
	if err != nil {
		return err
	}

	if justRun {
		var deadline time.Time
		if opts.Timeout > 0 {
			deadline = time.Now().Add(opts.Timeout)
		}
		cfg := interp.Config{
			Out:          os.Stdout,
			MaxSteps:     opts.MaxSteps,
			MaxHeapCells: opts.MaxHeapCells,
			Deadline:     deadline,
		}
		var res interp.Result
		if opts.Engine == core.EngineTreewalk {
			res, err = interp.New(info, cfg).Run("main")
		} else {
			var prog *bytecode.Program
			if prog, err = bytecode.For(info); err == nil {
				res, err = bytecode.NewVM(prog, cfg).Run("main")
			}
		}
		if err != nil {
			return err
		}
		fmt.Printf("main returned %d after %d IR instructions\n", res.Ret.I, res.Steps)
		return nil
	}

	if all {
		// One execution fans out to the whole grid (bit-identical to
		// per-config runs); -parallel bounds the worker pool.
		cfgs := core.PaperConfigs()
		reps, err := core.MultiRun(info, cfgs, opts)
		if err != nil {
			return err
		}
		for i, cfg := range cfgs {
			fmt.Printf("%-28s speedup %8.2fx  coverage %5.1f%%\n", cfg, reps[i].Speedup(), 100*reps[i].Coverage())
		}
		return nil
	}

	cfg, err := core.ParseConfig(cfgStr)
	if err != nil {
		return err
	}
	runOpts := opts
	runOpts.Out = os.Stdout
	r, err := core.Run(info, cfg, runOpts)
	if err != nil {
		return err
	}
	fmt.Print(r)
	return nil
}
