// Command lpa runs the Loopapalooza limit study on one LPC program.
//
// Usage:
//
//	lpa [-config "reduc1-dep1-fn2 HELIX"] prog.lpc
//	lpa -all prog.lpc        # every paper configuration
//	lpa -ir prog.lpc         # dump the canonicalized IR
//	lpa -run prog.lpc        # just execute the program
//
// Resource budgets:
//
//	lpa -max-steps 100e6 -timeout 30s -mem-limit 1e6 prog.lpc
//
// With no file, lpa reads the program from stdin.
//
// Exit codes map the failure taxonomy so scripts can classify runs
// without parsing messages:
//
//	0  success
//	1  usage, I/O, compile, or configuration error
//	3  guest runtime fault (division by zero, null/unmapped access, ...)
//	4  step budget exhausted
//	5  memory budget exhausted
//	6  deadline/timeout exceeded
//	7  canceled
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/core"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/lang"
)

func main() {
	cfgStr := flag.String("config", "reduc1-dep1-fn2 HELIX", "limit-study configuration")
	all := flag.Bool("all", false, "run every paper configuration")
	dumpIR := flag.Bool("ir", false, "print the canonicalized IR and loop analysis, then exit")
	justRun := flag.Bool("run", false, "execute the program without the limit study")
	maxSteps := flag.Int64("max-steps", 0, "dynamic instruction budget (0 = default)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
	memLimit := flag.Int64("mem-limit", 0, "heap budget in 64-bit cells (0 = default)")
	flag.Parse()

	opts := core.RunOptions{
		MaxSteps:     *maxSteps,
		Timeout:      *timeout,
		MaxHeapCells: *memLimit,
	}
	if err := run(*cfgStr, *all, *dumpIR, *justRun, flag.Arg(0), opts); err != nil {
		fmt.Fprintln(os.Stderr, "lpa:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps the failure taxonomy to distinct exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, core.ErrStepLimit):
		return 4
	case errors.Is(err, core.ErrMemLimit):
		return 5
	case errors.Is(err, core.ErrDeadline):
		return 6
	case errors.Is(err, core.ErrCanceled):
		return 7
	case errors.Is(err, core.ErrRuntime):
		return 3
	default:
		return 1
	}
}

func run(cfgStr string, all, dumpIR, justRun bool, path string, opts core.RunOptions) error {
	name := "<stdin>"
	var src []byte
	var err error
	if path == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		name = path
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}

	if dumpIR {
		m, err := lang.Compile(name, string(src))
		if err != nil {
			return err
		}
		info, err := analysis.AnalyzeModule(m)
		if err != nil {
			return err
		}
		fmt.Print(m)
		fmt.Println("loops:")
		for _, lm := range info.Loops {
			fmt.Printf("  %-24s depth %d  IVs %d  reductions %d  non-computable LCDs %d  calls=%v\n",
				lm.ID(), lm.Loop.Depth, len(lm.Computable), len(lm.Reductions),
				len(lm.NonComputable), lm.HasCall)
			for _, line := range lm.SCEV.SortedEvoStrings() {
				fmt.Printf("      %s\n", line)
			}
		}
		return nil
	}

	info, err := core.AnalyzeSource(name, string(src))
	if err != nil {
		return err
	}

	if justRun {
		var deadline time.Time
		if opts.Timeout > 0 {
			deadline = time.Now().Add(opts.Timeout)
		}
		in := interp.New(info, interp.Config{
			Out:          os.Stdout,
			MaxSteps:     opts.MaxSteps,
			MaxHeapCells: opts.MaxHeapCells,
			Deadline:     deadline,
		})
		res, err := in.Run("main")
		if err != nil {
			return err
		}
		fmt.Printf("main returned %d after %d IR instructions\n", res.Ret.I, res.Steps)
		return nil
	}

	if all {
		for _, cfg := range core.PaperConfigs() {
			r, err := core.Run(info, cfg, opts)
			if err != nil {
				return err
			}
			fmt.Printf("%-28s speedup %8.2fx  coverage %5.1f%%\n", cfg, r.Speedup(), 100*r.Coverage())
		}
		return nil
	}

	cfg, err := core.ParseConfig(cfgStr)
	if err != nil {
		return err
	}
	runOpts := opts
	runOpts.Out = os.Stdout
	r, err := core.Run(info, cfg, runOpts)
	if err != nil {
		return err
	}
	fmt.Print(r)
	return nil
}
