// Command lpa runs the Loopapalooza limit study on one LPC program.
//
// Usage:
//
//	lpa [-config "reduc1-dep1-fn2 HELIX"] prog.lpc
//	lpa -all prog.lpc        # every paper configuration
//	lpa -ir prog.lpc         # dump the canonicalized IR
//	lpa -run prog.lpc        # just execute the program
//
// With no file, lpa reads the program from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/core"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/lang"
)

func main() {
	cfgStr := flag.String("config", "reduc1-dep1-fn2 HELIX", "limit-study configuration")
	all := flag.Bool("all", false, "run every paper configuration")
	dumpIR := flag.Bool("ir", false, "print the canonicalized IR and loop analysis, then exit")
	justRun := flag.Bool("run", false, "execute the program without the limit study")
	flag.Parse()

	if err := run(*cfgStr, *all, *dumpIR, *justRun, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "lpa:", err)
		os.Exit(1)
	}
}

func run(cfgStr string, all, dumpIR, justRun bool, path string) error {
	name := "<stdin>"
	var src []byte
	var err error
	if path == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		name = path
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}

	if dumpIR {
		m, err := lang.Compile(name, string(src))
		if err != nil {
			return err
		}
		info, err := analysis.AnalyzeModule(m)
		if err != nil {
			return err
		}
		fmt.Print(m)
		fmt.Println("loops:")
		for _, lm := range info.Loops {
			fmt.Printf("  %-24s depth %d  IVs %d  reductions %d  non-computable LCDs %d  calls=%v\n",
				lm.ID(), lm.Loop.Depth, len(lm.Computable), len(lm.Reductions),
				len(lm.NonComputable), lm.HasCall)
			for _, line := range lm.SCEV.SortedEvoStrings() {
				fmt.Printf("      %s\n", line)
			}
		}
		return nil
	}

	info, err := core.AnalyzeSource(name, string(src))
	if err != nil {
		return err
	}

	if justRun {
		in := interp.New(info, interp.Config{Out: os.Stdout})
		res, err := in.Run("main")
		if err != nil {
			return err
		}
		fmt.Printf("main returned %d after %d IR instructions\n", res.Ret.I, res.Steps)
		return nil
	}

	if all {
		for _, cfg := range core.PaperConfigs() {
			r, err := core.Run(info, cfg, core.RunOptions{})
			if err != nil {
				return err
			}
			fmt.Printf("%-28s speedup %8.2fx  coverage %5.1f%%\n", cfg, r.Speedup(), 100*r.Coverage())
		}
		return nil
	}

	cfg, err := core.ParseConfig(cfgStr)
	if err != nil {
		return err
	}
	r, err := core.Run(info, cfg, core.RunOptions{Out: os.Stdout})
	if err != nil {
		return err
	}
	fmt.Print(r)
	return nil
}
