// Quickstart: run the Loopapalooza limit study on a small program and read
// the report.
//
// The program sums a table inside a counted loop. The induction variable is
// a computable IV, the sum is a reduction — so the loop parallelizes as
// soon as reductions are decoupled (reduc1), and stays serial under reduc0
// with dep0.
package main

import (
	"fmt"
	"log"

	lp "loopapalooza"
)

const program = `
const N = 1000;
var tab [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) { tab[i] = i * 3 % 17; }
	var sum int = 0;
	for (i = 0; i < N; i = i + 1) { sum = sum + tab[i]; }
	return sum;
}`

func main() {
	// Analyze once; the compile-time component is configuration-free.
	info, err := lp.Analyze("quickstart", program)
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []lp.Config{
		{Model: lp.DOALL, Reduc: 0, Dep: 0, Fn: 0},
		{Model: lp.DOALL, Reduc: 1, Dep: 0, Fn: 0},
		lp.BestHELIX(),
	} {
		report, err := lp.StudyAnalyzed(info, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s speedup %7.2fx  coverage %5.1f%%\n",
			cfg, report.Speedup(), 100*report.Coverage())
	}

	// The full report names each loop and why it did or did not
	// parallelize.
	report, err := lp.StudyAnalyzed(info, lp.Config{Model: lp.DOALL})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report)
}
