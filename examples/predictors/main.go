// predictors: explore the §III-C value predictors on characteristic
// loop-carried value streams, and connect predictor hit rates to the dep2
// configuration's effect on a real kernel.
package main

import (
	"fmt"
	"log"

	lp "loopapalooza"
	"loopapalooza/internal/predict"
)

func rate(vals []uint64) float64 {
	h := predict.NewHybrid()
	for _, v := range vals {
		h.Observe(v)
	}
	return h.HitRate()
}

func main() {
	n := 2000

	constant := make([]uint64, n)
	for i := range constant {
		constant[i] = 42
	}
	stride := make([]uint64, n)
	for i := range stride {
		stride[i] = uint64(7 + 3*i)
	}
	periodic := make([]uint64, n)
	pattern := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	for i := range periodic {
		periodic[i] = pattern[i%len(pattern)]
	}
	random := make([]uint64, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range random {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		random[i] = x
	}

	fmt.Println("hybrid (last-value + stride + 2-delta + FCM) hit rates:")
	fmt.Printf("  constant stream   %5.1f%%  (last-value territory)\n", 100*rate(constant))
	fmt.Printf("  affine stream     %5.1f%%  (stride territory)\n", 100*rate(stride))
	fmt.Printf("  periodic stream   %5.1f%%  (FCM territory)\n", 100*rate(periodic))
	fmt.Printf("  random stream     %5.1f%%  (nothing helps)\n", 100*rate(random))
	fmt.Println()

	// The same effect, end to end: a loop whose only constraint is a
	// memory-loaded stride cursor — unparallelizable under dep0,
	// unlocked by dep2 because the cursor stream is affine.
	const program = `
const N = 2000;
var out [N]float;
var step [1]int;
func main() int {
	step[0] = 3;
	var cur int = 0;
	var i int;
	for (i = 0; i < N; i = i + 1) {
		cur = cur + step[0];
		out[i] = float(cur % 17) * 0.25;
	}
	return cur;
}`
	for _, dep := range []int{0, 2, 3} {
		cfg := lp.Config{Model: lp.PDOALL, Reduc: 1, Dep: dep, Fn: 2}
		r, err := lp.Study("cursor", program, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s speedup %7.2fx", cfg, r.Speedup())
		for _, lr := range r.Loops {
			if lr.NonComputable > 0 && dep == 2 {
				fmt.Printf("  (cursor hit rate %.0f%%)", 100*lr.PredHitRate)
			}
		}
		fmt.Println()
	}
}
