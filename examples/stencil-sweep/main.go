// stencil-sweep: walk a numeric workload up the paper's whole configuration
// ladder (Figures 2/3 style) and watch each Table II relaxation unlock a
// different part of the program.
//
// The workload combines the four phase types the kernels of this repo are
// built from: a serial input read, a DOALL stencil, a reduction (norm), a
// math-call phase, and an in-place recurrence that only HELIX pipelines.
package main

import (
	"fmt"
	"log"

	lp "loopapalooza"
)

const program = `
const W = 40;
const H = 40;
var grid [W * H]float;
var next [W * H]float;
func main() int {
	var i int; var j int;
	// Serial input read (library call per element).
	for (i = 0; i < W * H; i = i + 1) {
		var sv int = rand();
		grid[i] = float(sv % 97) * 0.01;
	}
	var t int;
	var norm float = 0.0;
	for (t = 0; t < 8; t = t + 1) {
		// DOALL stencil.
		for (i = 1; i < H - 1; i = i + 1) {
			for (j = 1; j < W - 1; j = j + 1) {
				var c int = i * W + j;
				next[c] = 0.25 * (grid[c - 1] + grid[c + 1] + grid[c - W] + grid[c + W]);
			}
		}
		// Reduction: convergence norm (reduc1 decouples it).
		norm = 0.0;
		for (i = 0; i < W * H; i = i + 1) { norm = norm + fabs(next[i] - grid[i]); }
		// Math-call phase (fn flags gate it).
		for (i = 0; i < W * H; i = i + 1) { grid[i] = sqrt(next[i] * next[i] + 0.01); }
		// In-place recurrence, produced early (HELIX pipelines it).
		for (i = 1; i < W * H; i = i + 1) {
			grid[i] = grid[i] * 0.9 + grid[i - 1] * 0.1;
			var w float = grid[i];
			next[i] = next[i] * 0.5 + (w * 0.2 + w * w * 0.01) * 0.5;
		}
	}
	return int(norm * 1000.0);
}`

func main() {
	info, err := lp.Analyze("stencil-sweep", program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10s %10s\n", "configuration", "speedup", "coverage")
	for _, cfg := range lp.PaperConfigs() {
		r, err := lp.StudyAnalyzed(info, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.2fx %9.1f%%\n", cfg, r.Speedup(), 100*r.Coverage())
	}
}
