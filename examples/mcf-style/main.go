// mcf-style: a deep dive into the paper's §IV observation that some
// benchmarks (179.art, 429.mcf, 450.soplex, 482.sphinx) prefer Partial-
// DOALL over HELIX.
//
// The workload scans a network's arcs; only rare, strongly-negative arcs
// update shared node potentials, and the update lands at the very end of
// the iteration. PDOALL pays a restart only when a conflict actually
// manifests; HELIX inserts synchronization between every pair of
// neighboring iterations sized by the producer-consumer gap — which here is
// nearly the whole iteration. The example prints both models' reports and
// the per-loop diagnostics that explain the winner.
package main

import (
	"fmt"
	"log"

	lp "loopapalooza"
)

const program = `
const ARCS = 4000;
const NODES = 64;
var tail [ARCS]int;
var head [ARCS]int;
var cost [ARCS]int;
var potential [NODES]int;
func main() int {
	var i int;
	for (i = 0; i < ARCS; i = i + 1) {
		tail[i] = (i * 31 + 1) % NODES;
		head[i] = (i * 67 + 5) % NODES;
		cost[i] = (i * 13 + 3) % 60 - 30;
	}
	for (i = 0; i < NODES; i = i + 1) { potential[i] = (i * 11) % 40; }
	var pass int;
	var pushes int = 0;
	for (pass = 0; pass < 3; pass = pass + 1) {
		var a int;
		for (a = 0; a < ARCS; a = a + 1) {
			// Long independent pricing computation...
			var red int = cost[a] + potential[tail[a]] - potential[head[a]];
			var score int = red;
			var k int;
			for (k = 0; k < 6; k = k + 1) { score = (score * 3 + k) % 997; }
			// ...and a rare, late shared update.
			if (red < -55 && score % 7 == 0) {
				potential[head[a]] = potential[head[a]] + red / 2;
				pushes = pushes + 1;
			}
		}
	}
	return pushes * 1000 + potential[5];
}`

func main() {
	info, err := lp.Analyze("mcf-style", program)
	if err != nil {
		log.Fatal(err)
	}
	pd, err := lp.StudyAnalyzed(info, lp.BestPDOALL())
	if err != nil {
		log.Fatal(err)
	}
	hx, err := lp.StudyAnalyzed(info, lp.BestHELIX())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("best PDOALL (%s): %.2fx\n", pd.Config, pd.Speedup())
	fmt.Printf("best HELIX  (%s): %.2fx\n", hx.Config, hx.Speedup())
	winner := "HELIX"
	if pd.Speedup() > hx.Speedup() {
		winner = "PDOALL"
	}
	fmt.Printf("winner: %s — as the paper observes for mcf-like workloads,\n", winner)
	fmt.Println("infrequent conflicts favor speculation over synchronization.")
	fmt.Println()
	fmt.Println(pd)
	fmt.Println(hx)
}
